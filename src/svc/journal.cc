#include "svc/journal.hh"

#include <cstring>
#include <unistd.h>
#include <utility>

#include <algorithm>
#include <map>

#include "sim/logging.hh"
#include "svc/svc_io.hh"
#include "trace/format.hh"

namespace mcsim::svc
{

namespace
{

using trace::crc32;
using trace::getU16;
using trace::getU32;
using trace::getU64;
using trace::putU16;
using trace::putU32;
using trace::putU64;

/** Bytes reserved for the grid name in the header (NUL padded). */
constexpr std::size_t gridNameBytes = 24;

/** Read the whole of @p path; fatal() when it cannot be opened. */
std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        fatal("svc: cannot open journal '%s'", path.c_str());
    std::vector<std::uint8_t> data;
    std::uint8_t buf[1 << 16];
    for (;;) {
        const std::size_t got = std::fread(buf, 1, sizeof(buf), file);
        data.insert(data.end(), buf, buf + got);
        if (got < sizeof(buf))
            break;
    }
    const bool bad = std::ferror(file) != 0;
    std::fclose(file);
    if (bad)
        fatal("svc: read error on journal '%s'", path.c_str());
    return data;
}

/** CRC over a frame: the 12 leading header bytes, then the payload. */
std::uint32_t
frameCrc(const std::uint8_t *head, const void *payload, std::size_t size)
{
    return crc32(payload, size, crc32(head, 12));
}

} // namespace

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Sweep:
        return "sweep";
      case RunMode::Chaos:
        return "chaos";
    }
    fatal("svc: unknown run mode %u", static_cast<unsigned>(mode));
}

const char *
journalKindName(JournalKind kind)
{
    switch (kind) {
      case JournalKind::Primary:
        return "primary";
      case JournalKind::Steal:
        return "steal";
    }
    fatal("svc: unknown journal kind %u", static_cast<unsigned>(kind));
}

std::vector<std::uint8_t>
encodeJournalHeader(const JournalHeader &header)
{
    std::vector<std::uint8_t> out;
    out.reserve(journalHeaderBytes);
    putU32(out, journalMagic);
    putU16(out, journalVersion);
    out.push_back(static_cast<std::uint8_t>(header.mode));
    out.push_back(static_cast<std::uint8_t>(header.kind));
    putU32(out, header.shardIndex);
    putU32(out, header.shardCount);
    putU32(out, header.gridPoints);
    putU32(out, header.shardPoints);
    putU64(out, header.planFingerprint);
    char label[gridNameBytes] = {};
    // Truncate silently: the name is descriptive, the fingerprint is
    // what resume and merge actually authenticate against.
    std::strncpy(label, header.grid.c_str(), gridNameBytes - 1);
    out.insert(out.end(), label, label + gridNameBytes);
    putU16(out, header.stealSlice);
    putU16(out, header.stealSlices);
    putU32(out, crc32(out.data(), out.size()));
    return out;
}

JournalHeader
decodeJournalHeader(const std::uint8_t *data, const char *context)
{
    if (getU32(data) != journalMagic)
        fatal("svc: bad magic in '%s' (not a checkpoint journal)",
              context);
    if (getU16(data + 4) != journalVersion) {
        fatal("svc: journal '%s' has version %u, this build reads %u",
              context, static_cast<unsigned>(getU16(data + 4)),
              static_cast<unsigned>(journalVersion));
    }
    const std::uint32_t stored = getU32(data + journalHeaderBytes - 4);
    if (crc32(data, journalHeaderBytes - 4) != stored)
        fatal("svc: journal '%s' header CRC mismatch", context);

    JournalHeader header;
    const std::uint8_t mode = data[6];
    if (mode > static_cast<std::uint8_t>(RunMode::Chaos))
        fatal("svc: journal '%s' has unknown run mode %u", context,
              static_cast<unsigned>(mode));
    header.mode = static_cast<RunMode>(mode);
    const std::uint8_t kind = data[7];
    if (kind > static_cast<std::uint8_t>(JournalKind::Steal))
        fatal("svc: journal '%s' has unknown kind %u", context,
              static_cast<unsigned>(kind));
    header.kind = static_cast<JournalKind>(kind);
    header.shardIndex = getU32(data + 8);
    header.shardCount = getU32(data + 12);
    header.gridPoints = getU32(data + 16);
    header.shardPoints = getU32(data + 20);
    header.planFingerprint = getU64(data + 24);
    const char *label = reinterpret_cast<const char *>(data + 32);
    header.grid.assign(label, strnlen(label, gridNameBytes));
    header.stealSlice = getU16(data + 56);
    header.stealSlices = getU16(data + 58);
    if (header.shardCount == 0 || header.shardIndex >= header.shardCount)
        fatal("svc: journal '%s' claims shard %u of %u", context,
              header.shardIndex, header.shardCount);
    if (header.kind == JournalKind::Primary &&
        (header.stealSlice != 0 || header.stealSlices != 0))
        fatal("svc: journal '%s' is primary but carries steal slice "
              "%u/%u",
              context, header.stealSlice, header.stealSlices);
    if (header.kind == JournalKind::Steal &&
        header.stealSlice >= header.stealSlices)
        fatal("svc: journal '%s' claims steal slice %u of %u", context,
              header.stealSlice, header.stealSlices);
    return header;
}

bool
journalExists(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    std::fclose(file);
    return true;
}

void
requireMatchingHeader(const JournalHeader &got, const JournalHeader &want,
                      const std::string &path)
{
    if (got.planFingerprint != want.planFingerprint) {
        fatal("svc: journal '%s' belongs to plan %016llx, this plan is "
              "%016llx (grid, scale, overrides, preset, or shard count "
              "changed; remove stale journals or fix the flags)",
              path.c_str(),
              static_cast<unsigned long long>(got.planFingerprint),
              static_cast<unsigned long long>(want.planFingerprint));
    }
    if (got.mode != want.mode || got.kind != want.kind ||
        got.shardIndex != want.shardIndex ||
        got.shardCount != want.shardCount ||
        got.gridPoints != want.gridPoints ||
        got.shardPoints != want.shardPoints ||
        got.stealSlice != want.stealSlice ||
        got.stealSlices != want.stealSlices) {
        fatal("svc: journal '%s' header disagrees with the plan "
              "(%s %s shard %u/%u, %u of %u points vs %s %s shard "
              "%u/%u, %u of %u points)",
              path.c_str(), journalKindName(got.kind),
              runModeName(got.mode), got.shardIndex, got.shardCount,
              got.shardPoints, got.gridPoints,
              journalKindName(want.kind), runModeName(want.mode),
              want.shardIndex, want.shardCount, want.shardPoints,
              want.gridPoints);
    }
}

JournalScan
scanJournal(const std::string &path, ScanPolicy policy)
{
    const std::vector<std::uint8_t> data = readFile(path);

    JournalScan scan;
    if (data.size() < journalHeaderBytes) {
        // Killed between creation and the header flush: nothing was
        // recorded, so the caller simply recreates the journal.
        scan.emptyFile = data.empty();
        scan.headerTorn = true;
        scan.tornBytes = data.size();
        return scan;
    }
    scan.header = decodeJournalHeader(data.data(), path.c_str());
    scan.validBytes = journalHeaderBytes;

    // Index -> position in scan.frames, for duplicate detection (and,
    // under Lenient, in-place replacement by the later frame).
    std::map<std::uint32_t, std::size_t> at;
    std::size_t pos = journalHeaderBytes;
    for (;;) {
        // Anything that does not parse as a complete, CRC-clean frame
        // ends the valid region: the writer appends one flushed frame
        // at a time, so only the final in-flight frame can be torn.
        if (pos + frameHeaderBytes > data.size())
            break;
        const std::uint8_t *head = data.data() + pos;
        if (getU32(head) != frameMagic)
            break;
        const std::uint32_t index = getU32(head + 4);
        const std::uint32_t size = getU32(head + 8);
        if (size > maxFramePayload)
            break;
        if (pos + frameHeaderBytes + size > data.size())
            break;
        const std::uint8_t *payload = head + frameHeaderBytes;
        if (frameCrc(head, payload, size) != getU32(head + 12))
            break;

        // Past the CRC, malformation is structural corruption, not a
        // torn tail -- refuse to resume rather than silently drop work.
        if (index >= scan.header.gridPoints) {
            fatal("svc: journal '%s' frame for point %u, grid has %u",
                  path.c_str(), index, scan.header.gridPoints);
        }
        if (index % scan.header.shardCount != scan.header.shardIndex) {
            fatal("svc: journal '%s' (shard %u of %u) holds foreign "
                  "point %u",
                  path.c_str(), scan.header.shardIndex,
                  scan.header.shardCount, index);
        }
        JournalFrame frame;
        frame.index = index;
        frame.payload.assign(reinterpret_cast<const char *>(payload),
                             size);
        const auto it = at.find(index);
        if (it != at.end()) {
            if (policy == ScanPolicy::Strict)
                fatal("svc: journal '%s' records point %u twice",
                      path.c_str(), index);
            scan.frames[it->second] = std::move(frame);
            scan.supersededFrames += 1;
        } else {
            at.emplace(index, scan.frames.size());
            scan.frames.push_back(std::move(frame));
        }
        pos += frameHeaderBytes + size;
        scan.validBytes = pos;
    }
    scan.tornBytes = data.size() - scan.validBytes;
    return scan;
}

CompactStats
compactJournal(const std::string &path, const std::string &out_path)
{
    // Lenient: compaction is the designated repair path for a journal a
    // strict reader refuses (in-file duplicates keep the last frame).
    JournalScan scan = scanJournal(path, ScanPolicy::Lenient);
    if (scan.headerTorn) {
        fatal("svc: journal '%s' has no intact header; nothing to "
              "compact (remove it and re-run instead)",
              path.c_str());
    }

    CompactStats stats;
    stats.frames = scan.frames.size();
    stats.supersededFrames = scan.supersededFrames;
    stats.tornBytes = scan.tornBytes;
    stats.bytesBefore = scan.validBytes + scan.tornBytes;

    // Ascending index order: the output is a canonical function of the
    // surviving (index, payload) set, independent of completion order,
    // so compacting equal coverage always yields identical bytes.
    std::sort(scan.frames.begin(), scan.frames.end(),
              [](const JournalFrame &a, const JournalFrame &b) {
                  return a.index < b.index;
              });

    const std::string tmp = out_path + ".compact.tmp";
    try {
        JournalWriter writer = JournalWriter::create(tmp, scan.header);
        for (const JournalFrame &frame : scan.frames)
            writer.append(frame.index, frame.payload);
        writer.close();
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
    if (svcIo().rename(tmp.c_str(), out_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("svc: cannot publish compacted journal '%s'",
              out_path.c_str());
    }
    stats.bytesAfter = journalHeaderBytes;
    for (const JournalFrame &frame : scan.frames)
        stats.bytesAfter += frameHeaderBytes + frame.payload.size();
    return stats;
}

JournalWriter::JournalWriter(std::string path_, std::FILE *file_)
    : path(std::move(path_)), file(file_)
{
}

JournalWriter::JournalWriter(JournalWriter &&other) noexcept
    : path(std::move(other.path)), file(other.file)
{
    other.file = nullptr;
}

JournalWriter::~JournalWriter()
{
    if (file != nullptr)
        std::fclose(file);
}

JournalWriter
JournalWriter::create(const std::string &path, const JournalHeader &header)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        fatal("svc: cannot create journal '%s'", path.c_str());
    const std::vector<std::uint8_t> bytes = encodeJournalHeader(header);
    if (svcIo().write(bytes.data(), bytes.size(), file) != bytes.size() ||
        svcIo().flush(file) != 0) {
        std::fclose(file);
        fatal("svc: cannot write journal header to '%s'", path.c_str());
    }
    return JournalWriter(path, file);
}

JournalWriter
JournalWriter::resume(const std::string &path, std::uint64_t valid_bytes)
{
    // Drop the torn tail first so the next frame lands exactly after
    // the last valid one; "ab" then keeps every write at end-of-file.
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
        fatal("svc: cannot truncate journal '%s'", path.c_str());
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (file == nullptr)
        fatal("svc: cannot reopen journal '%s'", path.c_str());
    return JournalWriter(path, file);
}

void
JournalWriter::append(std::uint32_t index, const std::string &payload)
{
    if (file == nullptr)
        fatal("svc: append to closed journal '%s'", path.c_str());
    if (payload.size() > maxFramePayload)
        fatal("svc: journal '%s' payload of %zu bytes exceeds limit",
              path.c_str(), payload.size());
    std::vector<std::uint8_t> bytes;
    bytes.reserve(frameHeaderBytes + payload.size());
    putU32(bytes, frameMagic);
    putU32(bytes, index);
    putU32(bytes, static_cast<std::uint32_t>(payload.size()));
    putU32(bytes, frameCrc(bytes.data(), payload.data(), payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    // One write, one flush: the frame reaches the OS before the point
    // counts as checkpointed, so SIGKILL can only lose in-flight work.
    if (svcIo().write(bytes.data(), bytes.size(), file) != bytes.size() ||
        svcIo().flush(file) != 0)
        fatal("svc: cannot append to journal '%s'", path.c_str());
}

void
JournalWriter::close()
{
    if (file == nullptr)
        return;
    const bool ok = std::fclose(file) == 0;
    file = nullptr;
    if (!ok)
        fatal("svc: close of journal '%s' reported a write error",
              path.c_str());
}

} // namespace mcsim::svc
