/**
 * @file
 * Trace front-end conformance suite (DESIGN.md section 14).
 *
 * Four property families:
 *  - codec round trips: random records and headers survive
 *    encode/decode byte-exactly, including the delta state;
 *  - capture -> replay identity: every quick-grid point (all seven
 *    models x the four paper workloads) replays its own capture with
 *    bit-identical cycles and metrics;
 *  - malformed-input rejection: every corruption class raises a
 *    structured FatalError from validation, never a crash or an assert
 *    inside the machine;
 *  - generator contract: seed-stable byte-identical output, pinned
 *    distribution shapes, and the committed golden corpus
 *    (tests/golden/traces/) regenerating exactly.
 */

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "exp/grid.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trace/capture.hh"
#include "trace/format.hh"
#include "trace/generators.hh"
#include "trace/import.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"
#include "workloads/workload.hh"

using namespace mcsim;

namespace
{

/** A record with only the fields the codec preserves for @p kind. */
trace::Record
randomRecord(Rng &rng)
{
    trace::Record rec;
    rec.kind = static_cast<trace::OpKind>(rng.below(9));
    const bool isLoad = rec.kind == trace::OpKind::Load ||
                        rec.kind == trace::OpKind::LoadUse;
    const bool isStore = rec.kind == trace::OpKind::Store ||
                         rec.kind == trace::OpKind::SyncStore;
    switch (rec.kind) {
      case trace::OpKind::Exec:
        rec.cycles = static_cast<std::uint32_t>(rng.next());
        break;
      case trace::OpKind::Use:
        rec.token = rng.below(1u << 20);
        break;
      case trace::OpKind::Load:
      case trace::OpKind::LoadUse:
      case trace::OpKind::Store:
      case trace::OpKind::SyncLoad:
      case trace::OpKind::SyncRmw:
      case trace::OpKind::SyncStore:
      case trace::OpKind::Fence:
        break;
    }
    if (rec.kind != trace::OpKind::Exec && rec.kind != trace::OpKind::Use &&
        rec.kind != trace::OpKind::Fence) {
        rec.addr = rng.below(1u << 24);
    }
    if (isStore)
        rec.value = rng.next();
    // The wire format allows 32-bit width on plain data accesses only
    // (sync ops are always word-sized).
    if (isLoad || rec.kind == trace::OpKind::Store)
        rec.width = rng.chance(0.25) ? 4 : 8;
    if (isLoad)
        rec.own = rng.chance(0.25);
    return rec;
}

std::vector<std::uint8_t>
tinyTrace(trace::Generator kind, unsigned procs, unsigned ops,
          std::uint64_t seed)
{
    trace::GeneratorParams params;
    params.kind = kind;
    params.procs = procs;
    params.opsPerProc = ops;
    params.seed = seed;
    return trace::generateTraceBytes(params);
}

/** Expect TraceWorkload construction (full validation) to throw. */
void
expectRejected(std::vector<std::uint8_t> bytes, const char *what)
{
    EXPECT_THROW(
        trace::TraceWorkload(
            std::make_shared<trace::MemorySource>(std::move(bytes))),
        FatalError)
        << what;
}

/** Patch the file header's CRC after a deliberate field edit. */
void
resealHeader(std::vector<std::uint8_t> &bytes)
{
    const std::uint32_t crc =
        trace::crc32(bytes.data(), trace::headerBytes - 4);
    bytes[60] = static_cast<std::uint8_t>(crc);
    bytes[61] = static_cast<std::uint8_t>(crc >> 8);
    bytes[62] = static_cast<std::uint8_t>(crc >> 16);
    bytes[63] = static_cast<std::uint8_t>(crc >> 24);
}

} // namespace

// ---------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------

TEST(TraceFormat, RecordCodecRoundTripsRandomStreams)
{
    Rng rng(0x7261636543u);
    std::vector<trace::Record> records;
    for (unsigned i = 0; i < 4096; ++i)
        records.push_back(randomRecord(rng));

    std::vector<std::uint8_t> wire;
    trace::CodecState enc;
    for (const trace::Record &rec : records)
        trace::encodeRecord(wire, enc, rec);

    trace::CodecState dec;
    std::size_t pos = 0;
    for (const trace::Record &rec : records) {
        const trace::Record got =
            trace::decodeRecord(wire.data(), wire.size(), pos, dec, "test");
        EXPECT_EQ(got, rec);
    }
    EXPECT_EQ(pos, wire.size());
}

TEST(TraceFormat, EncodingIsDeterministic)
{
    // Byte-exact: the same record sequence encodes to the same bytes, so
    // a deterministic producer yields a byte-identical file.
    Rng rngA(42), rngB(42);
    std::vector<std::uint8_t> a, b;
    trace::CodecState sa, sb;
    for (unsigned i = 0; i < 512; ++i) {
        trace::encodeRecord(a, sa, randomRecord(rngA));
        trace::encodeRecord(b, sb, randomRecord(rngB));
    }
    EXPECT_EQ(a, b);
}

TEST(TraceFormat, HeaderRoundTrips)
{
    trace::TraceHeader header;
    header.procCount = 16;
    header.seed = 0xDEADBEEFCAFEull;
    header.generator = trace::Generator::Ring;
    header.source = "ring";
    header.totalRecords = 123456789;

    const std::vector<std::uint8_t> bytes = trace::encodeHeader(header);
    ASSERT_EQ(bytes.size(), trace::headerBytes);
    const trace::TraceHeader got = trace::decodeHeader(bytes.data());
    EXPECT_EQ(got.procCount, header.procCount);
    EXPECT_EQ(got.seed, header.seed);
    EXPECT_EQ(got.generator, header.generator);
    EXPECT_EQ(got.source, header.source);
    EXPECT_EQ(got.totalRecords, header.totalRecords);
}

TEST(TraceFormat, GeneratorNamesRoundTrip)
{
    for (trace::Generator g :
         {trace::Generator::Captured, trace::Generator::Zipfian,
          trace::Generator::Bursty, trace::Generator::Ring,
          trace::Generator::LockStorm}) {
        EXPECT_EQ(trace::generatorFromName(trace::generatorName(g)), g);
    }
    EXPECT_THROW(trace::generatorFromName("bogus"), FatalError);
}

TEST(TraceFormat, Crc32MatchesReferenceVectors)
{
    // IEEE 802.3 check value: the framing must never drift, committed
    // traces embed these CRCs.
    EXPECT_EQ(trace::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(trace::crc32("", 0), 0x00000000u);
}

// ---------------------------------------------------------------------
// Capture -> replay identity
// ---------------------------------------------------------------------

TEST(TraceCaptureReplay, QuickGridReplaysBitIdentically)
{
    // Every quick-grid point (7 models x 4 workloads): record the run
    // through the issue-boundary tap, replay the trace on the identical
    // configuration, and require bit-identical cycles and metrics.
    const exp::Grid grid = exp::namedGrid("quick", exp::Scale::Quick);
    ASSERT_EQ(grid.points.size(), 28u);
    for (const exp::SweepPoint &point : grid.points) {
        const auto workload = point.makeWorkload();
        trace::TraceHeader header;
        header.procCount = point.numProcs;
        header.seed = point.seed;
        header.source = point.benchmark;

        trace::MemorySink sink;
        trace::TraceCapture capture(header, sink);
        const workloads::RunResult captured = workloads::runWorkload(
            *workload, point.machineConfig(),
            [&](core::Machine &m) { capture.attach(m); });
        capture.finish();

        trace::TraceWorkload replay(
            std::make_shared<trace::MemorySource>(sink.take()),
            point.benchmark);
        const workloads::RunResult replayed =
            workloads::runWorkload(replay, point.machineConfig());

        EXPECT_EQ(captured.metrics.cycles, replayed.metrics.cycles)
            << point.id();
        const StatSet a = captured.metrics.toStatSet();
        const StatSet b = replayed.metrics.toStatSet();
        for (const auto &[name, value] : a)
            EXPECT_EQ(value, b.get(name)) << point.id() << ": " << name;
    }
}

TEST(TraceCaptureReplay, CaptureDoesNotPerturbTheRun)
{
    // The tap is observational: a captured run's cycle count equals the
    // same run without capture.
    exp::SweepPoint point;
    point.benchmark = "Qsort";
    point.model = core::Model::RC;
    point.scale = exp::Scale::Quick;
    point.numProcs = 8;
    point.cacheBytes = 4096;
    point.seed = point.derivedSeed();

    const auto plainWl = point.makeWorkload();
    const workloads::RunResult plain =
        workloads::runWorkload(*plainWl, point.machineConfig());

    trace::TraceHeader header;
    header.procCount = point.numProcs;
    header.source = point.benchmark;
    trace::MemorySink sink;
    trace::TraceCapture capture(header, sink);
    const auto capturedWl = point.makeWorkload();
    const workloads::RunResult captured = workloads::runWorkload(
        *capturedWl, point.machineConfig(),
        [&](core::Machine &m) { capture.attach(m); });
    capture.finish();

    EXPECT_EQ(plain.metrics.cycles, captured.metrics.cycles);
    EXPECT_GT(capture.recordCount(), 0u);
}

TEST(TraceCaptureReplay, ReplayTerminatesOnEveryModel)
{
    // A generated trace is a traffic pattern: replay must terminate and
    // fully retire on all seven models, not just a capture source.
    const auto bytes = tinyTrace(trace::Generator::LockStorm, 4, 200, 5);
    for (core::Model model : core::allModels) {
        trace::TraceWorkload replay(
            std::make_shared<trace::MemorySource>(bytes));
        core::MachineConfig cfg;
        cfg.numProcs = 4;
        cfg.numModules = 4;
        cfg.cacheBytes = 4096;
        cfg.model = model;
        const workloads::RunResult result =
            workloads::runWorkload(replay, cfg);
        EXPECT_GT(result.metrics.cycles, 0u) << core::modelName(model);
    }
}

TEST(TraceCaptureReplay, FingerprintIsContentNotTiming)
{
    // The chaos fingerprint is the trace content hash: identical bytes
    // give identical fingerprints on any model, distinct seeds differ.
    const auto bytes = tinyTrace(trace::Generator::Zipfian, 4, 200, 7);
    trace::TraceWorkload a(std::make_shared<trace::MemorySource>(bytes));
    trace::TraceWorkload b(std::make_shared<trace::MemorySource>(bytes));
    EXPECT_EQ(a.traceSummary().contentHash, b.traceSummary().contentHash);

    const auto other = tinyTrace(trace::Generator::Zipfian, 4, 200, 8);
    trace::TraceWorkload c(std::make_shared<trace::MemorySource>(other));
    EXPECT_NE(a.traceSummary().contentHash, c.traceSummary().contentHash);
}

TEST(TraceCaptureReplay, ReplayRefusesToRescale)
{
    const auto bytes = tinyTrace(trace::Generator::Zipfian, 4, 64, 1);
    trace::TraceWorkload replay(
        std::make_shared<trace::MemorySource>(bytes));
    core::MachineConfig cfg;
    cfg.numProcs = 8;  // trace recorded for 4
    cfg.numModules = 8;
    cfg.cacheBytes = 4096;
    EXPECT_THROW(workloads::runWorkload(replay, cfg), FatalError);
}

// ---------------------------------------------------------------------
// Malformed-input rejection
// ---------------------------------------------------------------------

TEST(TraceMalformed, RejectsTruncationEverywhere)
{
    const auto bytes = tinyTrace(trace::Generator::Bursty, 2, 64, 9);
    ASSERT_GT(bytes.size(), trace::headerBytes + trace::blockHeaderBytes);

    // No complete file header.
    expectRejected({bytes.begin(), bytes.begin() + 10}, "tiny prefix");
    expectRejected({bytes.begin(), bytes.begin() + trace::headerBytes - 1},
                   "header cut short");
    // Partial block header.
    expectRejected(
        {bytes.begin(), bytes.begin() + trace::headerBytes + 7},
        "partial block header");
    // Block payload cut short.
    expectRejected({bytes.begin(), bytes.end() - 1}, "payload cut short");
}

TEST(TraceMalformed, RejectsBadMagicAndVersion)
{
    auto bytes = tinyTrace(trace::Generator::Bursty, 2, 64, 9);
    auto bad = bytes;
    bad[0] ^= 0xFF;
    expectRejected(bad, "file magic");

    bad = bytes;
    bad[4] = 99;  // version field precedes the CRC check by design:
                  // future versions may re-lay-out the header
    expectRejected(bad, "version");

    bad = bytes;
    bad[trace::headerBytes] ^= 0xFF;  // first block's magic
    expectRejected(bad, "block magic");
}

TEST(TraceMalformed, RejectsHeaderCorruption)
{
    auto bytes = tinyTrace(trace::Generator::Bursty, 2, 64, 9);
    auto bad = bytes;
    bad[16] ^= 0x01;  // seed byte: CRC no longer matches
    expectRejected(bad, "header CRC");

    // Resealed corruption: the CRC is valid but the field is absurd.
    bad = bytes;
    bad[12] = 200;  // generator id way past LockStorm
    resealHeader(bad);
    expectRejected(bad, "generator id");

    bad = bytes;
    bad[8] = 0;  // procCount = 0
    resealHeader(bad);
    expectRejected(bad, "zero procs");

    bad = bytes;
    bad[24] ^= 0x01;  // totalRecords disagrees with the block index
    resealHeader(bad);
    expectRejected(bad, "record count mismatch");
}

TEST(TraceMalformed, RejectsBlockCorruption)
{
    const auto bytes = tinyTrace(trace::Generator::Bursty, 2, 64, 9);
    const std::size_t block = trace::headerBytes;

    auto bad = bytes;
    bad[block + 4] = 77;  // proc id out of the 2-proc range
    expectRejected(bad, "out-of-range proc");

    bad = bytes;
    bad[block + 8] = 0;  // record count 0
    bad[block + 9] = 0;
    bad[block + 10] = 0;
    bad[block + 11] = 0;
    expectRejected(bad, "implausible record count");

    bad = bytes;
    bad[block + trace::blockHeaderBytes] ^= 0xFF;  // payload byte
    expectRejected(bad, "payload CRC");
}

TEST(TraceMalformed, RejectsMidRecordTruncation)
{
    // A store head byte followed by a dangling varint continuation:
    // decode must fault on the mid-record end of payload, not read past.
    const std::uint8_t payload[] = {0x04, 0x80};
    trace::CodecState state;
    std::size_t pos = 0;
    EXPECT_THROW(trace::decodeRecord(payload, sizeof(payload), pos, state,
                                     "test block"),
                 FatalError);

    const std::uint8_t badOpcode[] = {0x4F};
    pos = 0;
    EXPECT_THROW(trace::decodeRecord(badOpcode, sizeof(badOpcode), pos,
                                     state, "test block"),
                 FatalError);
}

TEST(TraceMalformed, RejectsSemanticViolations)
{
    // Structurally clean traces whose content would trip processor
    // asserts: validation must refuse them first.
    {
        // Use of a token no Load produced.
        trace::TraceHeader header;
        header.procCount = 1;
        header.source = "bad";
        trace::MemorySink sink;
        trace::TraceWriter writer(header, sink);
        trace::Record use;
        use.kind = trace::OpKind::Use;
        use.token = 5;
        writer.append(0, use);
        writer.finish();
        expectRejected(sink.take(), "dead token");
    }
    {
        // Misaligned address for the access width.
        trace::TraceHeader header;
        header.procCount = 1;
        header.source = "bad";
        trace::MemorySink sink;
        trace::TraceWriter writer(header, sink);
        trace::Record load;
        load.kind = trace::OpKind::Load;
        load.addr = 3;
        writer.append(0, load);
        writer.finish();
        expectRejected(sink.take(), "misaligned");
    }
}

TEST(TraceMalformed, RejectsTrailingPayloadBytes)
{
    // Hand-frame a block whose payload holds one record plus a stray
    // byte; the CRC is correct, so only record accounting catches it.
    trace::TraceHeader header;
    header.procCount = 1;
    header.source = "bad";
    header.totalRecords = 1;

    std::vector<std::uint8_t> payload;
    trace::CodecState state;
    trace::Record fence;
    fence.kind = trace::OpKind::Fence;
    trace::encodeRecord(payload, state, fence);
    payload.push_back(0x08);  // a stray extra byte

    std::vector<std::uint8_t> bytes = trace::encodeHeader(header);
    trace::putU32(bytes, trace::blockMagic);
    trace::putU32(bytes, 0);  // proc
    trace::putU32(bytes, 1);  // records
    trace::putU32(bytes, static_cast<std::uint32_t>(payload.size()));
    trace::putU32(bytes, trace::crc32(payload.data(), payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    expectRejected(bytes, "trailing bytes");
}

// ---------------------------------------------------------------------
// Generator contract
// ---------------------------------------------------------------------

TEST(TraceGenerators, SameSeedSameBytes)
{
    for (trace::Generator g :
         {trace::Generator::Zipfian, trace::Generator::Bursty,
          trace::Generator::Ring, trace::Generator::LockStorm}) {
        const auto a = tinyTrace(g, 4, 300, 21);
        const auto b = tinyTrace(g, 4, 300, 21);
        EXPECT_EQ(a, b) << trace::generatorName(g);
        const auto c = tinyTrace(g, 4, 300, 22);
        EXPECT_NE(a, c) << trace::generatorName(g);
    }
}

TEST(TraceGenerators, EveryGeneratedTraceValidates)
{
    for (trace::Generator g :
         {trace::Generator::Zipfian, trace::Generator::Bursty,
          trace::Generator::Ring, trace::Generator::LockStorm}) {
        trace::TraceReader reader(std::make_shared<trace::MemorySource>(
            tinyTrace(g, 4, 400, 13)));
        const trace::TraceSummary summary = reader.validate();
        EXPECT_GT(summary.records, 0u) << trace::generatorName(g);
        EXPECT_GT(summary.addrLimit, 0u) << trace::generatorName(g);
    }
}

TEST(TraceGenerators, ZipfianSkewConcentratesOnHotKeys)
{
    trace::GeneratorParams params;
    params.kind = trace::Generator::Zipfian;
    params.procs = 4;
    params.opsPerProc = 2000;
    params.seed = 17;
    params.hotKeys = 64;
    params.zipfSkew = 1.2;
    trace::TraceReader reader(std::make_shared<trace::MemorySource>(
        trace::generateTraceBytes(params)));

    // Count data references per key across all processors.
    std::vector<std::uint64_t> perKey(params.hotKeys, 0);
    std::uint64_t total = 0;
    for (unsigned p = 0; p < params.procs; ++p) {
        trace::TraceReader::Stream stream = reader.stream(p);
        trace::Record rec;
        while (stream.next(rec)) {
            if (rec.kind != trace::OpKind::Load &&
                rec.kind != trace::OpKind::Store)
                continue;
            const std::uint64_t key = (rec.addr - 4096) / 8;
            ASSERT_LT(key, perKey.size());
            perKey[key] += 1;
            total += 1;
        }
    }
    ASSERT_GT(total, 0u);
    // Key 0 carries the largest share, far above uniform (1/64), and
    // the top-8 keys dominate -- the zipfian signature.
    const double top = static_cast<double>(perKey[0]) / total;
    EXPECT_GT(top, 5.0 / 64.0);
    std::uint64_t top8 = 0;
    for (unsigned k = 0; k < 8; ++k)
        top8 += perKey[k];
    EXPECT_GT(static_cast<double>(top8) / total, 0.5);
    for (unsigned k = 1; k < 8; ++k)
        EXPECT_GE(perKey[0], perKey[k]);
}

TEST(TraceGenerators, ShapesMatchTheirProtocols)
{
    const auto kindCount = [](const std::vector<std::uint8_t> &bytes) {
        trace::TraceReader reader(
            std::make_shared<trace::MemorySource>(bytes));
        return reader.validate().perKind;
    };

    // Lock storm: each critical section emits exactly one test read,
    // one rmw, and one releasing store.
    const auto lock =
        kindCount(tinyTrace(trace::Generator::LockStorm, 4, 500, 5));
    const auto idx = [](trace::OpKind k) {
        return static_cast<std::size_t>(k);
    };
    EXPECT_GT(lock[idx(trace::OpKind::SyncRmw)], 0u);
    EXPECT_EQ(lock[idx(trace::OpKind::SyncLoad)],
              lock[idx(trace::OpKind::SyncRmw)]);
    EXPECT_EQ(lock[idx(trace::OpKind::SyncLoad)],
              lock[idx(trace::OpKind::SyncStore)]);

    // Ring: one acquire-shaped flag read per release-shaped publish.
    const auto ring =
        kindCount(tinyTrace(trace::Generator::Ring, 4, 500, 3));
    EXPECT_GT(ring[idx(trace::OpKind::SyncStore)], 0u);
    EXPECT_EQ(ring[idx(trace::OpKind::SyncLoad)],
              ring[idx(trace::OpKind::SyncStore)]);

    // Burst: every overlapped load is eventually used.
    const auto burst =
        kindCount(tinyTrace(trace::Generator::Bursty, 4, 500, 11));
    EXPECT_GT(burst[idx(trace::OpKind::Load)], 0u);
    EXPECT_EQ(burst[idx(trace::OpKind::Load)],
              burst[idx(trace::OpKind::Use)]);
}

TEST(TraceGenerators, RejectsBadParameters)
{
    trace::GeneratorParams params;
    params.kind = trace::Generator::Zipfian;
    params.procs = 6;  // not a power of two
    EXPECT_THROW(trace::generateTraceBytes(params), FatalError);

    params.procs = 4;
    params.zipfSkew = 9.0;
    EXPECT_THROW(trace::generateTraceBytes(params), FatalError);

    params.zipfSkew = 0.9;
    params.kind = trace::Generator::Captured;
    EXPECT_THROW(trace::generateTraceBytes(params), FatalError);
}

// ---------------------------------------------------------------------
// Golden corpus
// ---------------------------------------------------------------------

namespace
{

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden trace " << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** The committed corpus: (file, generator, seed); 4 procs x 200 ops. */
struct CorpusEntry
{
    const char *file;
    trace::Generator kind;
    std::uint64_t seed;
};

constexpr CorpusEntry corpus[] = {
    {"zipf_p4.mct", trace::Generator::Zipfian, 7},
    {"burst_p4.mct", trace::Generator::Bursty, 11},
    {"ring_p4.mct", trace::Generator::Ring, 3},
    {"lock_p4.mct", trace::Generator::LockStorm, 5},
};

} // namespace

TEST(TraceGolden, CorpusRegeneratesByteIdentically)
{
    // The committed traces are the cross-version conformance anchor: a
    // format or generator change that breaks byte identity must be
    // intentional (regenerate via `trace_runner generate`, see
    // EXPERIMENTS.md) and reviewed.
    for (const CorpusEntry &entry : corpus) {
        const auto committed = readFileBytes(
            std::string(MCSIM_GOLDEN_DIR) + "/traces/" + entry.file);
        const auto regenerated = tinyTrace(entry.kind, 4, 200, entry.seed);
        EXPECT_EQ(committed, regenerated) << entry.file;
    }
}

TEST(TraceGolden, CorpusReplaysOnAllModels)
{
    for (const CorpusEntry &entry : corpus) {
        const auto bytes = readFileBytes(
            std::string(MCSIM_GOLDEN_DIR) + "/traces/" + entry.file);
        if (bytes.empty())
            continue;  // readFileBytes already failed the expectation
        for (core::Model model : core::allModels) {
            trace::TraceWorkload replay(
                std::make_shared<trace::MemorySource>(bytes));
            core::MachineConfig cfg;
            cfg.numProcs = 4;
            cfg.numModules = 4;
            cfg.cacheBytes = 4096;
            cfg.model = model;
            const workloads::RunResult result =
                workloads::runWorkload(replay, cfg);
            EXPECT_GT(result.metrics.cycles, 0u)
                << entry.file << " on " << core::modelName(model);
        }
    }
}

// ---------------------------------------------------------------------
// Text import (`<proc> <r|w> <hex-addr>` lines -> canonical .mct)
// ---------------------------------------------------------------------

TEST(TraceImport, MapsLinesToRecordsExactly)
{
    const std::string text = "# comment, then a blank line\n"
                             "\n"
                             "0 r 0x1000\n"
                             "1 w 0xabcd\n"
                             "2 R 1008\n"
                             "0 W 0x1009\n";
    trace::MemorySink sink;
    const trace::ImportSummary summary =
        trace::importTextTrace(text, {}, sink);
    EXPECT_EQ(summary.records, 4u);
    EXPECT_EQ(summary.reads, 2u);
    EXPECT_EQ(summary.writes, 2u);
    EXPECT_EQ(summary.blankLines, 2u);
    // Highest proc is 2 -> next power of two is 4 (Omega routing).
    EXPECT_EQ(summary.procs, 4u);

    trace::TraceReader reader(
        std::make_shared<trace::MemorySource>(sink.take()));
    EXPECT_EQ(reader.header().procCount, 4u);
    EXPECT_EQ(reader.header().generator, trace::Generator::Captured);
    EXPECT_EQ(reader.header().source, "import");
    reader.validate();

    // proc 0: read 0x1000, then write of 0x1009 aligned down to 0x1008
    // carrying the 1-based transaction number as its value.
    trace::TraceReader::Stream p0 = reader.stream(0);
    trace::Record rec;
    ASSERT_TRUE(p0.next(rec));
    EXPECT_EQ(rec.kind, trace::OpKind::LoadUse);
    EXPECT_EQ(rec.addr, 0x1000u);
    ASSERT_TRUE(p0.next(rec));
    EXPECT_EQ(rec.kind, trace::OpKind::Store);
    EXPECT_EQ(rec.addr, 0x1008u);
    EXPECT_EQ(rec.value, 4u);
    EXPECT_FALSE(p0.next(rec));

    // proc 1: the write to 0xabcd aligns down to 0xabc8.
    trace::TraceReader::Stream p1 = reader.stream(1);
    ASSERT_TRUE(p1.next(rec));
    EXPECT_EQ(rec.kind, trace::OpKind::Store);
    EXPECT_EQ(rec.addr, 0xabc8u);
    EXPECT_EQ(rec.value, 2u);

    // proc 2: bare hex (no 0x prefix) still parses as hex.
    trace::TraceReader::Stream p2 = reader.stream(2);
    ASSERT_TRUE(p2.next(rec));
    EXPECT_EQ(rec.kind, trace::OpKind::LoadUse);
    EXPECT_EQ(rec.addr, 0x1008u);
}

TEST(TraceImport, IsDeterministic)
{
    const std::string text = "0 r 0x10\n1 w 0x20\n0 w 0x30\n";
    trace::MemorySink a, b;
    trace::importTextTrace(text, {}, a);
    trace::importTextTrace(text, {}, b);
    EXPECT_EQ(a.bytes(), b.bytes());
    EXPECT_FALSE(a.bytes().empty());
}

TEST(TraceImport, ProcOverrideMustBePowerOfTwoAndLargeEnough)
{
    const std::string text = "4 r 0x10\n";
    trace::MemorySink sink;
    trace::ImportParams params;

    params.procs = 16; // widen beyond the inferred 8: allowed
    EXPECT_EQ(trace::importTextTrace(text, params, sink).procs, 16u);

    params.procs = 4; // proc 4 needs at least 5 slots
    EXPECT_THROW(trace::importTextTrace(text, params, sink), FatalError);
    params.procs = 6; // not a power of two (Omega networks)
    EXPECT_THROW(trace::importTextTrace(text, params, sink), FatalError);
}

TEST(TraceImport, RejectsEveryMalformedLineWithItsNumber)
{
    trace::MemorySink sink;
    const struct
    {
        const char *text;
        const char *why;
    } bad[] = {
        {"0 r 0x10\n1 x 0x20\n", "unknown operation"},
        {"0 w 0xNOPE\n", "bad address"},
        {"p9 r 0x1000\n", "bad processor"},
        {"0 r 0x10 extra\n", "trailing junk"},
        {"0 r\n", "missing address"},
        {"# only comments\n\n", "empty trace"},
    };
    for (const auto &c : bad) {
        EXPECT_THROW(trace::importTextTrace(c.text, {}, sink), FatalError)
            << c.why;
    }
}

TEST(TraceImport, ImportedTracesReplayOnEveryModel)
{
    // A small contended mix: every model must replay an imported trace
    // to completion (the import emits only blocking LoadUse/Store, which
    // every protocol handles).
    std::string text;
    for (unsigned i = 0; i < 64; ++i) {
        text += strprintf("%u %c 0x%x\n", i % 4, i % 3 == 0 ? 'w' : 'r',
                          0x1000 + (i % 8) * 8);
    }
    trace::MemorySink sink;
    trace::importTextTrace(text, {}, sink);
    const std::vector<std::uint8_t> bytes = sink.take();
    for (core::Model model : core::allModels) {
        trace::TraceWorkload replay(
            std::make_shared<trace::MemorySource>(bytes));
        core::MachineConfig cfg;
        cfg.numProcs = 4;
        cfg.numModules = 4;
        cfg.cacheBytes = 4096;
        cfg.model = model;
        const workloads::RunResult result =
            workloads::runWorkload(replay, cfg);
        EXPECT_GT(result.metrics.cycles, 0u) << core::modelName(model);
    }
}
