/**
 * @file
 * Configuration of the invariant-checking layer (src/check/).
 *
 * Kept free of other mcsim headers so core/machine_config.hh can embed a
 * CheckConfig without pulling the checker implementation into every
 * translation unit.
 */

#ifndef MCSIM_CHECK_CHECK_CONFIG_HH
#define MCSIM_CHECK_CHECK_CONFIG_HH

#include <cstdint>

namespace mcsim::check
{

/** What to do when an auditor detects a violation. */
enum class CheckMode : std::uint8_t
{
    Off,    ///< no checking at all (figure benches: zero overhead)
    Count,  ///< count violations in CheckStats; warn on the first few
    Fatal,  ///< throw FatalError at the first violation (tests)
};

/**
 * Which auditors run and how they report. Checking is on by default:
 * every test and the microbenchmarks run fully audited; the figure
 * benches (bench/bench_common.hh baseConfig) switch it off so the
 * reported timings carry no checking overhead.
 */
struct CheckConfig
{
    CheckMode mode = CheckMode::Fatal;

    /** Directory/cache agreement auditing after protocol transitions. */
    bool coherence = true;
    /** Model-specific issue/completion ordering rules. */
    bool ordering = true;
    /** Happens-before data-race detection over simulated accesses.
     *  Disable for intentionally racy programs (the synthetic stress
     *  workload, the litmus demo); a race means WO/RC results are
     *  undefined per the paper's data-race-free assumption. */
    bool races = true;

    bool enabled() const
    {
        return mode != CheckMode::Off && (coherence || ordering || races);
    }
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_CHECK_CONFIG_HH
