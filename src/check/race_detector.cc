#include "check/race_detector.hh"

#include "sim/logging.hh"

namespace mcsim::check
{

RaceDetector::RaceDetector(unsigned num_procs) : numProcs(num_procs)
{
    procClock.reserve(num_procs);
    for (unsigned p = 0; p < num_procs; ++p) {
        VectorClock c(num_procs);
        // Start each processor at epoch 1 so a recorded access is always
        // distinguishable from the zero-initialized shadow state.
        c.set(static_cast<ProcId>(p), 1);
        procClock.push_back(c);
    }
}

RaceDetector::Shadow &
RaceDetector::shadowFor(Addr granule)
{
    return shadow[granule];
}

std::string
RaceDetector::checkRead(ProcId p, Addr granule)
{
    Shadow &s = shadowFor(granule);
    const VectorClock &c = procClock[p];

    // The previous write must happen-before this read.
    if (s.writer != Shadow::noWriter && s.writer != p &&
        s.writeClock > c.get(s.writer)) {
        return strprintf("write by p%u races read by p%u at addr 0x%llx",
                         s.writer, p,
                         static_cast<unsigned long long>(granule << 2));
    }
    if (s.readClocks.empty())
        s.readClocks.assign(numProcs, 0);
    s.readClocks[p] = c.get(p);
    return {};
}

std::string
RaceDetector::checkWrite(ProcId p, Addr granule)
{
    Shadow &s = shadowFor(granule);
    const VectorClock &c = procClock[p];

    if (s.writer != Shadow::noWriter && s.writer != p &&
        s.writeClock > c.get(s.writer)) {
        return strprintf("write by p%u races write by p%u at addr 0x%llx",
                         s.writer, p,
                         static_cast<unsigned long long>(granule << 2));
    }
    // Every previous read must happen-before this write.
    if (!s.readClocks.empty()) {
        for (unsigned q = 0; q < numProcs; ++q) {
            if (q != p && s.readClocks[q] > c.get(static_cast<ProcId>(q))) {
                return strprintf(
                    "read by p%u races write by p%u at addr 0x%llx", q, p,
                    static_cast<unsigned long long>(granule << 2));
            }
        }
    }
    s.writer = p;
    s.writeClock = c.get(p);
    return {};
}

std::string
RaceDetector::read(ProcId p, Addr addr, unsigned width)
{
    numChecked += 1;
    for (Addr a = addr; a < addr + width; a += 4) {
        std::string r = checkRead(p, granuleOf(a));
        if (!r.empty())
            return r;
    }
    return {};
}

std::string
RaceDetector::write(ProcId p, Addr addr, unsigned width)
{
    numChecked += 1;
    for (Addr a = addr; a < addr + width; a += 4) {
        std::string r = checkWrite(p, granuleOf(a));
        if (!r.empty())
            return r;
    }
    return {};
}

void
RaceDetector::acquire(ProcId p, Addr sync_addr)
{
    auto it = syncClock.find(sync_addr);
    if (it != syncClock.end())
        procClock[p].join(it->second);
}

void
RaceDetector::release(ProcId p, Addr sync_addr)
{
    auto it = syncClock.try_emplace(sync_addr, numProcs).first;
    it->second.join(procClock[p]);
    procClock[p].tick(p);
}

} // namespace mcsim::check
