#include "mem/cache.hh"

#include <algorithm>

#include "check/checker.hh"
#include "sim/logging.hh"

namespace mcsim::mem
{

void
CacheParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 8)
        fatal("cache line size must be a power of two >= 8 (got %u)",
              lineBytes);
    if (assoc == 0)
        fatal("cache associativity must be nonzero");
    if (cacheBytes % (lineBytes * assoc) != 0)
        fatal("cache size %u not divisible by line*assoc (%u)", cacheBytes,
              lineBytes * assoc);
    if (!isPowerOf2(numSets()))
        fatal("cache set count %u must be a power of two", numSets());
    if (numMshrs == 0)
        fatal("cache needs at least one MSHR");
}

Cache::Cache(EventQueue &eq, ProcId proc, const CacheParams &params,
             Outbox &outbox, unsigned num_modules)
    : queue(eq), procId(proc), cfg(params), out(outbox),
      numModules(num_modules), lines(cfg.numSets() * cfg.assoc),
      mshrs(cfg.numMshrs)
{
    cfg.validate();
    if (num_modules == 0)
        fatal("cache needs at least one memory module");
}

std::uint32_t
Cache::setOf(Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / cfg.lineBytes) &
                                      (cfg.numSets() - 1));
}

ModuleId
Cache::moduleOf(Addr line_addr) const
{
    return static_cast<ModuleId>((line_addr / cfg.lineBytes) % numModules);
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::uint32_t set = setOf(line_addr);
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = lines[set * cfg.assoc + w];
        if (line.state != LineState::Invalid && line.lineAddr == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

Cache::Mshr *
Cache::findMshr(Addr line_addr)
{
    for (auto &m : mshrs)
        if (m.valid && m.lineAddr == line_addr)
            return &m;
    return nullptr;
}

void
Cache::accountMshrs(int delta)
{
    const Tick now = queue.now();
    cacheStats.mshrBusyCycles += mshrBusy * (now - mshrStamp);
    mshrStamp = now;
    mshrBusy = static_cast<unsigned>(static_cast<int>(mshrBusy) + delta);
}

Cache::Mshr *
Cache::allocMshr()
{
    for (auto &m : mshrs)
        if (!m.valid)
            return &m;
    return nullptr;
}

unsigned
Cache::freeMshrs() const
{
    unsigned n = 0;
    for (const auto &m : mshrs)
        if (!m.valid)
            ++n;
    return n;
}

Cache::LineState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(lineOf(addr));
    return line ? line->state : LineState::Invalid;
}

unsigned
Cache::validLineCount() const
{
    unsigned n = 0;
    for (const auto &line : lines)
        if (line.state == LineState::Shared || line.state == LineState::Modified)
            ++n;
    return n;
}

std::vector<std::pair<Addr, Cache::LineState>>
Cache::validLines() const
{
    std::vector<std::pair<Addr, LineState>> out;
    for (const auto &line : lines) {
        if (line.state == LineState::Shared ||
            line.state == LineState::Modified) {
            out.emplace_back(line.lineAddr, line.state);
        }
    }
    return out;
}

std::vector<Cache::MshrView>
Cache::pendingMshrs() const
{
    std::vector<MshrView> out;
    for (const auto &m : mshrs) {
        if (!m.valid)
            continue;
        out.push_back(MshrView{m.lineAddr, m.exclusive, m.replyReceived,
                               m.issueTick, m.attempts});
    }
    return out;
}

Cache::Line *
Cache::pickVictim(std::uint32_t set)
{
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = lines[set * cfg.assoc + w];
        if (line.state == LineState::Invalid)
            return &line;
        if (line.state == LineState::Pending)
            continue;
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    return victim;
}

void
Cache::bumpGrantFloor(Addr line_addr, std::uint32_t seq)
{
    std::uint32_t &floor = grantFloor[line_addr];
    floor = std::max(floor, seq);
}

std::uint32_t
Cache::grantFloorOf(Addr line_addr) const
{
    auto it = grantFloor.find(line_addr);
    return it == grantFloor.end() ? 0 : it->second;
}

void
Cache::evict(Line &line)
{
    MCSIM_ASSERT(line.state == LineState::Shared ||
                     line.state == LineState::Modified,
                 "evicting line in bad state");
    if (plan) {
        // The grant this copy was installed under is surrendered; any
        // reply at or below its seq still in flight is a stale duplicate
        // and must not satisfy a later miss on this line.
        bumpGrantFloor(line.lineAddr, line.seq + 1);
    }
    if (line.state == LineState::Modified) {
        // Exclusive lines always surrender via Writeback so the directory
        // never waits forever on a recall (see DESIGN.md).
        cacheStats.writebacks += 1;
        sendRequest(MsgKind::Writeback, line.lineAddr, false, 0, line.seq);
        if (plan) {
            // Hardened: the line enters writeback limbo until the
            // directory acknowledges; re-requests block meanwhile.
            wbLimbo.insert(line.lineAddr);
        }
    }
    // Clean (Shared) lines are dropped silently; the directory's stale
    // presence bit costs at worst one spurious Invalidate later.
    const Addr line_addr = line.lineAddr;
    line.state = LineState::Invalid;
    line.lineAddr = invalidAddr;
    if (checker)
        checker->onCacheLineEvent(procId, line_addr);
}

void
Cache::sendRequest(MsgKind kind, Addr line_addr, bool bypass_eligible,
                   Tick delay, std::uint32_t seq)
{
    NetMsg msg;
    msg.src = procId;
    msg.dst = moduleOf(line_addr);
    msg.bytes = messageBytes(kind, cfg.lineBytes);
    msg.bypassEligible = bypass_eligible;
    msg.payload = CoherenceMsg{kind, line_addr, procId, seq};
    if (checker)
        checker->onProtocolMessage(msg.payload, /*to_memory=*/true);
    if (delay == 0) {
        out.send(std::move(msg));
    } else {
        queue.scheduleIn(
            delay, [this, m = msg]() mutable { out.send(std::move(m)); },
            EventQueue::prioDeliver);
    }
}

void
Cache::launchMiss(Line &way_line, std::uint32_t set, Addr line_addr,
                  bool exclusive, bool is_prefetch, std::uint64_t cookie,
                  bool bypass_eligible, bool count_inval)
{
    Mshr *mshr = allocMshr();
    MCSIM_ASSERT(mshr != nullptr, "launchMiss without free MSHR");

    if (way_line.state != LineState::Invalid)
        evict(way_line);

    way_line.lineAddr = line_addr;
    way_line.state = LineState::Pending;
    way_line.lru = queue.now();

    mshr->valid = true;
    accountMshrs(+1);
    mshr->lineAddr = line_addr;
    mshr->exclusive = exclusive;
    mshr->prefetch = is_prefetch;
    mshr->set = set;
    mshr->way = static_cast<std::uint32_t>(&way_line - &lines[set * cfg.assoc]);
    mshr->cookies.clear();
    mshr->issueTick = queue.now();
    mshr->replyReceived = false;
    mshr->completed = false;
    mshr->completionTick = 0;
    mshr->freeTick = 0;
    mshr->deferredInvalidate = false;
    mshr->deferredRecallExclusive = false;
    mshr->deferredRecallShared = false;
    mshr->deferredRecallSeq = 0;
    mshr->replySeq = 0;
    mshr->minAcceptSeq = plan ? grantFloorOf(line_addr) : 0;
    mshr->attempts = 0;
    mshr->retryGen = 0;
    if (!is_prefetch)
        mshr->cookies.push_back(cookie);

    if (invalidatedLines.erase(line_addr) > 0 && !is_prefetch &&
        count_inval) {
        cacheStats.invalidationMisses += 1;
    }

    sendRequest(exclusive ? MsgKind::GetExclusive : MsgKind::GetShared,
                line_addr, bypass_eligible, cfg.missHandleCycles);
    if (plan && plan->config().retryTimeoutCycles > 0)
        armRetry(*mshr, cfg.missHandleCycles + retryDelay(line_addr, 0));
}

AccessOutcome
Cache::access(Addr addr, AccessType type, std::uint64_t cookie)
{
    const Addr line_addr = lineOf(addr);
    const bool wants_excl = needsExclusive(type);

    if (plan && wbLimbo.count(line_addr)) {
        // Hardened: our Writeback for this line is still unacknowledged;
        // re-requesting now could race it at the directory. The WbAck
        // fires the retry handler.
        cacheStats.blockedAccesses += 1;
        return AccessOutcome::Blocked;
    }

    // Statistics are recorded on the first (non-Blocked) attempt outcome;
    // Blocked attempts will be retried and counted then.
    auto count = [&](bool hit) {
        switch (type) {
          case AccessType::Load:
          case AccessType::LoadOwn:
            cacheStats.loads += 1;
            cacheStats.loadHits += hit ? 1 : 0;
            break;
          case AccessType::Store:
            cacheStats.stores += 1;
            cacheStats.storeHits += hit ? 1 : 0;
            break;
          case AccessType::SyncLoad:
          case AccessType::SyncRmw:
          case AccessType::SyncStore:
            cacheStats.syncAccesses += 1;
            cacheStats.syncHits += hit ? 1 : 0;
            break;
        }
    };

    if (Line *line = findLine(line_addr)) {
        if (line->state == LineState::Modified ||
            (line->state == LineState::Shared && !wants_excl)) {
            line->lru = queue.now();
            count(true);
            return AccessOutcome::Hit;
        }

        if (line->state == LineState::Shared && wants_excl) {
            // Write to a read-held line: invalidate the local copy and
            // refetch with write permission -- a write miss (paper 3.3).
            if (allocMshr() != nullptr) {
                count(false);
                if (plan)
                    bumpGrantFloor(line_addr, line->seq + 1);
                line->state = LineState::Invalid;
                line->lineAddr = invalidAddr;
                const std::uint32_t set = setOf(line_addr);
                launchMiss(*line, set, line_addr, true, false, cookie,
                           false, !isSync(type));
                return AccessOutcome::Miss;
            }
            cacheStats.blockedAccesses += 1;
            return AccessOutcome::Blocked;
        }

        // Pending fill in this set for this line.
        MCSIM_ASSERT(line->state == LineState::Pending,
                     "unexpected line state");
        Mshr *mshr = findMshr(line_addr);
        MCSIM_ASSERT(mshr != nullptr, "pending line without MSHR");
        if (wants_excl && !mshr->exclusive) {
            // Store onto an in-flight read fetch: must wait, then upgrade.
            cacheStats.blockedAccesses += 1;
            return AccessOutcome::Blocked;
        }
        count(false);
        cacheStats.mergedAccesses += 1;
        if (mshr->prefetch) {
            mshr->prefetch = false;  // becomes a demand fetch
            cacheStats.prefetchesUseful += 1;
        }
        if (mshr->completed) {
            // Reply already processed; this consumer completes when the
            // fill fully settles.
            fireCompletion(cookie, std::max(queue.now(), mshr->freeTick));
        } else {
            mshr->cookies.push_back(cookie);
        }
        return AccessOutcome::Merged;
    }

    // True miss.
    if (allocMshr() == nullptr) {
        cacheStats.blockedAccesses += 1;
        return AccessOutcome::Blocked;
    }
    const std::uint32_t set = setOf(line_addr);
    Line *victim = pickVictim(set);
    if (!victim) {
        cacheStats.blockedAccesses += 1;
        return AccessOutcome::Blocked;
    }
    count(false);
    const bool bypass =
        cfg.bypassLoads && !wants_excl;  // load requests bypass under WO2
    launchMiss(*victim, set, line_addr, wants_excl, false, cookie, bypass,
               !isSync(type));
    if (cfg.nextLinePrefetch && !isSync(type))
        prefetch(line_addr + cfg.lineBytes, false);
    return AccessOutcome::Miss;
}

bool
Cache::prefetch(Addr addr, bool exclusive)
{
    const Addr line_addr = lineOf(addr);
    if (plan && wbLimbo.count(line_addr))
        return false;
    if (Line *line = findLine(line_addr)) {
        // Present (in any state) or already being fetched: nothing to do.
        // A non-binding prefetch never invalidates a valid copy.
        (void)line;
        return false;
    }
    if (allocMshr() == nullptr)
        return false;
    const std::uint32_t set = setOf(line_addr);
    Line *victim = pickVictim(set);
    if (!victim)
        return false;
    cacheStats.prefetchesIssued += 1;
    launchMiss(*victim, set, line_addr, exclusive, true, 0, false, false);
    return true;
}

void
Cache::fireCompletion(std::uint64_t cookie, Tick when)
{
    queue.schedule(
        std::max(when, queue.now()),
        [this, cookie]() {
            if (completionFn)
                completionFn(cookie);
        },
        EventQueue::prioCpu);
}

void
Cache::notifyRetry()
{
    if (retryFn)
        retryFn();
}

Tick
Cache::retryDelay(Addr line_addr, unsigned attempt)
{
    // First re-issue waits the plain timeout; later ones add bounded
    // exponential backoff with seed-derived jitter so colliding
    // retries decohere instead of hammering the directory in lockstep.
    const Tick timeout = plan->config().retryTimeoutCycles;
    if (chooser) {
        // RetryDelay choice point: under model checking the stretch is
        // scheduler-chosen instead of seed-jittered, so prompt and
        // delayed re-issue orders are both explored.
        const ChoiceOption options[2] = {ChoiceOption{line_addr, 0},
                                         ChoiceOption{line_addr, 1}};
        const unsigned pick =
            chooser->choose(ChoiceKind::RetryDelay, options, 2);
        MCSIM_ASSERT(pick < 2, "retry delay choice %u", pick);
        return timeout * (1 + pick);
    }
    return attempt == 0
               ? timeout
               : timeout + plan->backoffCycles(procId, attempt);
}

void
Cache::armRetry(Mshr &mshr, Tick delay)
{
    const std::uint64_t gen = ++retrySeq;
    mshr.retryGen = gen;
    queue.scheduleIn(
        std::max<Tick>(delay, 1),
        [this, line_addr = mshr.lineAddr, gen]() {
            retryFire(line_addr, gen);
        },
        EventQueue::prioDefault);
}

void
Cache::retryFire(Addr line_addr, std::uint64_t gen)
{
    Mshr *mshr = findMshr(line_addr);
    if (!mshr || mshr->retryGen != gen || mshr->replyReceived)
        return;  // superseded timer, or the reply made it after all
    mshr->attempts += 1;
    cacheStats.retries += 1;
    if (tracer) {
        tracer->span(obs::Track::Cache, procId,
                     obs::SpanKind::FaultRetry, queue.now(), 1,
                     line_addr);
    }
    sendRequest(mshr->exclusive ? MsgKind::GetExclusive
                                : MsgKind::GetShared,
                line_addr, false, 0);
    armRetry(*mshr, retryDelay(line_addr, mshr->attempts));
}

void
Cache::handleResponse(NetMsg &&msg)
{
    const CoherenceMsg &cm = msg.payload;
    switch (cm.kind) {
      case MsgKind::DataReplyShared:
      case MsgKind::DataReplyExclusive: {
        Mshr *mshr = findMshr(cm.lineAddr);
        const bool excl = cm.kind == MsgKind::DataReplyExclusive;
        if (plan) {
            // Hardened: duplicated or long-delayed grants can arrive with
            // no (or the wrong) transaction waiting, or after an
            // Invalidate/Recall already revoked them (minAcceptSeq).
            // Discarding is safe -- the protocol is timing-only and the
            // timeout retry recovers the miss.
            if (!mshr || mshr->replyReceived || excl != mshr->exclusive ||
                cm.seq < mshr->minAcceptSeq) {
                cacheStats.staleReplies += 1;
                break;
            }
        } else {
            MCSIM_ASSERT(mshr != nullptr,
                         "data reply without MSHR for line");
            MCSIM_ASSERT(!mshr->replyReceived, "duplicate data reply");
            MCSIM_ASSERT(excl == mshr->exclusive,
                         "reply permission does not match request");
        }
        mshr->replyReceived = true;
        mshr->replySeq = cm.seq;
        const Tick completion = queue.now() + cfg.fillCycles;
        const Tick latency = completion - mshr->issueTick;
        cacheStats.missLatencySum += latency;
        cacheStats.missLatencyCount += 1;
        cacheStats.missLatencyMax =
            std::max<Tick>(cacheStats.missLatencyMax, latency);
        cacheStats.missLatencyHist.record(latency);
        if (tracer) {
            tracer->span(obs::Track::Cache, procId,
                         obs::SpanKind::MissService, mshr->issueTick,
                         latency, mshr->lineAddr);
        }
        const Tick install = queue.now() + cfg.lineWords();
        mshr->completionTick = completion;
        mshr->freeTick = std::max(completion, install);
        // Fire completions for consumers attached so far. Scheduled ahead
        // of the settle event so that, when completion and settle land on
        // the same tick, consumers are marked complete before the MSHR is
        // reclaimed.
        queue.schedule(
            completion,
            [this, line_addr = cm.lineAddr]() {
                Mshr *m = findMshr(line_addr);
                if (!m || m->completed)
                    return;
                m->completed = true;
                std::vector<std::uint64_t> cookies;
                cookies.swap(m->cookies);
                for (std::uint64_t c : cookies) {
                    if (completionFn)
                        completionFn(c);
                }
            },
            EventQueue::prioDeliver);
        queue.schedule(
            mshr->freeTick,
            [this, line_addr = cm.lineAddr]() { settleFill(line_addr); },
            EventQueue::prioDeliver);
        break;
      }

      case MsgKind::Invalidate: {
        cacheStats.invalidationsReceived += 1;
        if (plan) {
            // The stamp is the invalidating transaction's grant seq:
            // every grant to us ordered before it is now revoked, even
            // ones still in flight that no live MSHR remembers.
            bumpGrantFloor(cm.lineAddr, cm.seq);
        }
        if (Mshr *mshr = findMshr(cm.lineAddr)) {
            if (mshr->replyReceived) {
                // The invalidation targets the line we are installing;
                // apply it once the fill settles.
                mshr->deferredInvalidate = true;
            } else {
                // Stale presence bit: our old copy is long gone and our
                // own fetch is ordered after the invalidating transaction.
                if (plan) {
                    // Hardened: a delayed grant for our fetch could still
                    // overtake this revocation; refuse anything older than
                    // the invalidating transaction's grant.
                    mshr->minAcceptSeq =
                        std::max(mshr->minAcceptSeq, cm.seq);
                }
                sendRequest(MsgKind::InvAck, cm.lineAddr, false, 0);
            }
            break;
        }
        if (ignoreNextInvalidate && findLine(cm.lineAddr) != nullptr) {
            // Fault injection: acknowledge but keep the stale copy.
            ignoreNextInvalidate = false;
            sendRequest(MsgKind::InvAck, cm.lineAddr, false, 0);
            break;
        }
        applyInvalidate(cm.lineAddr);
        sendRequest(MsgKind::InvAck, cm.lineAddr, false, 0);
        break;
      }

      case MsgKind::RecallShared:
      case MsgKind::RecallExclusive: {
        const bool excl = cm.kind == MsgKind::RecallExclusive;
        if (plan)
            bumpGrantFloor(cm.lineAddr, cm.seq);
        if (Mshr *mshr = findMshr(cm.lineAddr)) {
            if (mshr->replyReceived) {
                if (plan && cm.seq <= mshr->replySeq) {
                    // The recall targets a grant older than the one we
                    // just accepted; its transaction already closed.
                    cacheStats.staleReplies += 1;
                    break;
                }
                if (plan)
                    mshr->deferredRecallSeq = cm.seq;
                if (excl)
                    mshr->deferredRecallExclusive = true;
                else
                    mshr->deferredRecallShared = true;
            } else {
                // We no longer own the line (writeback in flight).
                if (plan) {
                    mshr->minAcceptSeq =
                        std::max(mshr->minAcceptSeq, cm.seq);
                }
                sendRequest(MsgKind::RecallStale, cm.lineAddr, false, 0,
                            plan ? cm.seq : 0);
            }
            break;
        }
        Line *line = findLine(cm.lineAddr);
        if (!line) {
            sendRequest(MsgKind::RecallStale, cm.lineAddr, false, 0,
                        plan ? cm.seq : 0);
            break;
        }
        if (plan) {
            if (line->seq >= cm.seq) {
                // Long-delayed recall: the recalling transaction already
                // completed (its data arrived via the racing writeback)
                // and this copy comes from a strictly later grant.
                // Flushing it would revoke a current grant; discard, and
                // send nothing -- that transaction needs no reply.
                cacheStats.staleReplies += 1;
                break;
            }
            if (line->state != LineState::Modified) {
                // Only a clean copy left of the grant under recall: no
                // dirty data to flush. RecallStale completes the
                // transaction from memory's image AND drops us from the
                // presence set, so the copy must be surrendered entirely
                // -- keeping it Shared would leave it untracked and
                // immune to later invalidations.
                line->state = LineState::Invalid;
                line->lineAddr = invalidAddr;
                invalidatedLines.insert(cm.lineAddr);
                if (checker)
                    checker->onCacheLineEvent(procId, cm.lineAddr);
                sendRequest(MsgKind::RecallStale, cm.lineAddr, false, 0,
                            cm.seq);
                break;
            }
        }
        applyRecall(cm.lineAddr, excl);
        break;
      }

      case MsgKind::Nack: {
        // Hardened protocol only: the directory refused our Get*. Re-arm
        // the retry timer at the pure backoff delay (no extra timeout --
        // the directory definitively has no grant in flight for us).
        MCSIM_ASSERT(plan != nullptr, "Nack on the legacy protocol");
        Mshr *mshr = findMshr(cm.lineAddr);
        if (!mshr || mshr->replyReceived) {
            cacheStats.staleReplies += 1;
            break;
        }
        cacheStats.nacksReceived += 1;
        mshr->attempts += 1;
        armRetry(*mshr,
                 plan->backoffCycles(procId,
                                     std::max(mshr->attempts, 1u)));
        break;
      }

      case MsgKind::WbAck: {
        // Hardened protocol only: our Writeback was consumed (or
        // recognized as stale) at the directory; the line may be
        // re-requested now.
        MCSIM_ASSERT(plan != nullptr, "WbAck on the legacy protocol");
        wbLimbo.erase(cm.lineAddr);
        notifyRetry();
        break;
      }

      case MsgKind::GetShared:
      case MsgKind::GetExclusive:
      case MsgKind::Writeback:
      case MsgKind::InvAck:
      case MsgKind::RecallStale:
      case MsgKind::FlushData:
        // Request-network kinds; the response network never carries them
        // (validateMessage rejects them at injection).
        unreachableMessage("cache", procId, cm.kind);
    }
}

void
Cache::applyInvalidate(Addr line_addr)
{
    Line *line = findLine(line_addr);
    if (!line)
        return;
    MCSIM_ASSERT(line->state == LineState::Shared,
                 "Invalidate for line in state %d",
                 static_cast<int>(line->state));
    line->state = LineState::Invalid;
    line->lineAddr = invalidAddr;
    invalidatedLines.insert(line_addr);
    if (checker)
        checker->onCacheLineEvent(procId, line_addr);
}

void
Cache::applyRecall(Addr line_addr, bool exclusive_recall)
{
    Line *line = findLine(line_addr);
    MCSIM_ASSERT(line && line->state == LineState::Modified,
                 "recall for line not in M state");
    cacheStats.recallsServed += 1;
    sendRequest(MsgKind::FlushData, line_addr, false, 0, line->seq);
    if (exclusive_recall) {
        line->state = LineState::Invalid;
        line->lineAddr = invalidAddr;
        invalidatedLines.insert(line_addr);
    } else {
        line->state = LineState::Shared;
    }
    if (checker)
        checker->onCacheLineEvent(procId, line_addr);
}

void
Cache::settleFill(Addr line_addr)
{
    Mshr *mshr = findMshr(line_addr);
    MCSIM_ASSERT(mshr != nullptr && mshr->replyReceived,
                 "settleFill without received reply");
    Line &line = lines[mshr->set * cfg.assoc + mshr->way];
    MCSIM_ASSERT(line.state == LineState::Pending &&
                     line.lineAddr == line_addr,
                 "settleFill on non-pending line");

    line.state = mshr->exclusive ? LineState::Modified : LineState::Shared;
    line.lru = queue.now();
    line.seq = mshr->replySeq;

    const bool deferred_inv = mshr->deferredInvalidate;
    const bool deferred_recall_excl = mshr->deferredRecallExclusive;
    const bool deferred_recall_shared = mshr->deferredRecallShared;
    const std::uint32_t deferred_recall_seq = mshr->deferredRecallSeq;
    MCSIM_ASSERT(mshr->completed || mshr->cookies.empty(),
                 "freeing MSHR with unfired consumers");
    mshr->valid = false;
    accountMshrs(-1);

    if (deferred_inv) {
        applyInvalidate(line_addr);
        sendRequest(MsgKind::InvAck, line_addr, false, 0);
    } else if (deferred_recall_excl || deferred_recall_shared) {
        if (plan && line.state != LineState::Modified) {
            // A Shared fill caught by a (self-)recall: clean surrender,
            // exactly as in the no-MSHR clean-copy case above.
            line.state = LineState::Invalid;
            line.lineAddr = invalidAddr;
            invalidatedLines.insert(line_addr);
            if (checker)
                checker->onCacheLineEvent(procId, line_addr);
            sendRequest(MsgKind::RecallStale, line_addr, false, 0,
                        deferred_recall_seq);
        } else {
            applyRecall(line_addr, deferred_recall_excl);
        }
    } else if (checker) {
        // Deferred paths audit inside applyInvalidate/applyRecall.
        checker->onCacheLineEvent(procId, line_addr);
    }

    notifyRetry();
}

} // namespace mcsim::mem
