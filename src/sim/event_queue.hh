/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are ordered by (tick, priority, insertion sequence), so two runs of
 * the same configuration always execute events in the same order; the paper's
 * methodology depends on run-to-run reproducibility for everything except
 * Qsort's intrinsic dynamic-scheduling variability.
 */

#ifndef MCSIM_SIM_EVENT_QUEUE_HH
#define MCSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace mcsim
{

/**
 * Discrete-event simulation kernel.
 *
 * Components schedule closures at absolute ticks. Scheduling in the past is a
 * simulator bug (panic). Within a tick, lower priority values run first and
 * ties preserve insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Well-known intra-tick priorities (lower runs first). */
    enum Priority : int
    {
        prioDeliver = -10,  ///< message deliveries / component state updates
        prioDefault = 0,    ///< ordinary events
        prioCpu = 10,       ///< processor resumption (sees this tick's state)
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return events.size(); }

    /** True when no events remain. */
    bool empty() const { return events.empty(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * @param when absolute tick; must be >= now()
     * @param cb the closure to execute
     * @param priority intra-tick ordering; lower runs first
     */
    void schedule(Tick when, Callback cb, int priority = prioDefault);

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, int priority = prioDefault)
    {
        schedule(curTick_ + delta, std::move(cb), priority);
    }

    /**
     * Execute events until the queue is empty or time would exceed
     * @p limit. Events scheduled exactly at @p limit are executed.
     * @return number of events executed by this call
     */
    std::uint64_t runUntil(Tick limit);

    /** Execute all events (or up to @p maxEvents as a runaway guard). */
    std::uint64_t run(std::uint64_t maxEvents = ~std::uint64_t(0));

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick curTick_ = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace mcsim

#endif // MCSIM_SIM_EVENT_QUEUE_HH
