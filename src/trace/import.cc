#include "trace/import.hh"

#include <cctype>
#include <cstdlib>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "trace/reader.hh"

namespace mcsim::trace
{

namespace
{

/** One parsed transaction, in input order. */
struct Transaction
{
    unsigned proc = 0;
    bool write = false;
    Addr addr = 0;
};

/** Next token in @p line from @p pos; empty at end of line. */
std::string
nextToken(const std::string &line, std::size_t &pos)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    const std::size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    return line.substr(start, pos - start);
}

/** Strict decimal parse; fatal() names the line. */
unsigned
parseProc(const std::string &token, std::uint64_t line_no)
{
    if (token.empty())
        fatal("trace import: line %llu: missing processor number",
              static_cast<unsigned long long>(line_no));
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fatal("trace import: line %llu: bad processor '%s' "
                  "(expected a decimal number)",
                  static_cast<unsigned long long>(line_no),
                  token.c_str());
    }
    char *end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (*end != '\0' || value > 4096)
        fatal("trace import: line %llu: bad processor '%s'",
              static_cast<unsigned long long>(line_no), token.c_str());
    return static_cast<unsigned>(value);
}

/** Strict hex parse, optional 0x prefix; fatal() names the line. */
Addr
parseAddr(const std::string &token, std::uint64_t line_no)
{
    if (token.empty())
        fatal("trace import: line %llu: missing address",
              static_cast<unsigned long long>(line_no));
    std::string digits = token;
    if (digits.size() > 2 && digits[0] == '0' &&
        (digits[1] == 'x' || digits[1] == 'X'))
        digits = digits.substr(2);
    if (digits.empty() || digits.size() > 16)
        fatal("trace import: line %llu: bad address '%s'",
              static_cast<unsigned long long>(line_no), token.c_str());
    for (char c : digits) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            fatal("trace import: line %llu: bad address '%s' (expected "
                  "hex)",
                  static_cast<unsigned long long>(line_no),
                  token.c_str());
    }
    return static_cast<Addr>(std::strtoull(digits.c_str(), nullptr, 16));
}

unsigned
nextPowerOfTwo(unsigned n)
{
    unsigned p = 1;
    while (p < n)
        p *= 2;
    return p;
}

} // namespace

ImportSummary
importTextTrace(const std::string &text, const ImportParams &params,
                ByteSink &sink)
{
    ImportSummary summary;
    std::vector<Transaction> transactions;
    unsigned max_proc = 0;

    std::size_t start = 0;
    std::uint64_t line_no = 0;
    while (start <= text.size()) {
        if (start == text.size() && line_no > 0)
            break;
        std::size_t eol = text.find('\n', start);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(start, eol - start);
        start = eol + 1;
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

        std::size_t pos = 0;
        const std::string proc_tok = nextToken(line, pos);
        if (proc_tok.empty() || proc_tok[0] == '#') {
            ++summary.blankLines;
            continue;
        }
        Transaction txn;
        txn.proc = parseProc(proc_tok, line_no);
        const std::string op = nextToken(line, pos);
        if (op != "r" && op != "w" && op != "R" && op != "W")
            fatal("trace import: line %llu: unknown operation '%s' "
                  "(expected r or w)",
                  static_cast<unsigned long long>(line_no), op.c_str());
        txn.write = op == "w" || op == "W";
        // The source format stores byte addresses; align down to the
        // containing 8-byte word -- same cache line, valid alignment.
        txn.addr = parseAddr(nextToken(line, pos), line_no) &
                   ~static_cast<Addr>(7);
        const std::string extra = nextToken(line, pos);
        if (!extra.empty() && extra[0] != '#')
            fatal("trace import: line %llu: trailing junk '%s'",
                  static_cast<unsigned long long>(line_no),
                  extra.c_str());
        max_proc = std::max(max_proc, txn.proc);
        transactions.push_back(txn);
    }
    if (transactions.empty())
        fatal("trace import: empty trace (no transactions)");

    unsigned procs = nextPowerOfTwo(max_proc + 1);
    if (params.procs != 0) {
        if ((params.procs & (params.procs - 1)) != 0)
            fatal("trace import: --procs %u is not a power of two",
                  params.procs);
        if (params.procs <= max_proc)
            fatal("trace import: --procs %u but the trace mentions "
                  "processor %u",
                  params.procs, max_proc);
        procs = params.procs;
    }

    TraceHeader header;
    header.procCount = procs;
    header.seed = params.seed;
    header.generator = Generator::Captured;
    header.source = "import";

    TraceWriter writer(header, sink);
    std::uint64_t line_value = 0;
    for (const Transaction &txn : transactions) {
        ++line_value;
        Record rec;
        if (txn.write) {
            rec.kind = OpKind::Store;
            rec.addr = txn.addr;
            rec.value = line_value; // deterministic non-zero payload
            ++summary.writes;
        } else {
            // No token notion in the source format: a read is a load
            // that its processor consumes immediately.
            rec.kind = OpKind::LoadUse;
            rec.addr = txn.addr;
            ++summary.reads;
        }
        writer.append(txn.proc, rec);
    }
    writer.finish();

    summary.procs = procs;
    summary.records = writer.recordCount();
    return summary;
}

ImportSummary
importTextTraceFile(const std::string &text_path,
                    const std::string &out_path,
                    const ImportParams &params)
{
    std::FILE *file = std::fopen(text_path.c_str(), "rb");
    if (file == nullptr)
        fatal("trace import: cannot open '%s'", text_path.c_str());
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const std::size_t got = std::fread(buf, 1, sizeof(buf), file);
        text.append(buf, got);
        if (got < sizeof(buf))
            break;
    }
    const bool bad = std::ferror(file) != 0;
    std::fclose(file);
    if (bad)
        fatal("trace import: read error on '%s'", text_path.c_str());

    FileSink sink(out_path);
    const ImportSummary summary = importTextTrace(text, params, sink);
    sink.close();

    // Validate the artifact end to end: an importer bug must fail the
    // command, never linger as a bad .mct.
    TraceReader reader(std::make_shared<FileSource>(out_path));
    reader.validate();
    return summary;
}

} // namespace mcsim::trace
