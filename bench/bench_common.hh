/**
 * @file
 * Shared support for the table/figure reproduction benches: workload
 * factories at the scaled (default) or paper-exact (--full) sizes, the
 * matching cache-size pairs, and row printers.
 *
 * Scaling (DESIGN.md / EXPERIMENTS.md): problem sizes and cache sizes
 * shrink together so every benchmark stays in the same fits/doesn't-fit
 * regime the paper analyses. "Small" cache means the paper's 16K (8K
 * scaled); "large" means 64K (32K scaled).
 */

#ifndef MCSIM_BENCH_COMMON_HH
#define MCSIM_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/metrics.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

namespace mcsim::bench
{

/** Benchmark identifiers in the paper's presentation order. */
inline const std::vector<std::string> benchmarkNames = {"Gauss", "Qsort",
                                                        "Relax", "Psim"};

/** True when --full was passed: paper-exact problem and cache sizes. */
inline bool
parseFull(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--full"))
            return true;
    return false;
}

inline unsigned
smallCache(bool full)
{
    return full ? 16 * 1024 : 8 * 1024;
}

inline unsigned
largeCache(bool full)
{
    return full ? 64 * 1024 : 32 * 1024;
}

inline const char *
cacheLabel(bool full, bool large)
{
    if (full)
        return large ? "64K" : "16K";
    return large ? "32K (64K-eq)" : "8K (16K-eq)";
}

/** Build one of the paper's benchmarks at the chosen scale. */
inline std::unique_ptr<workloads::Workload>
makeWorkload(const std::string &name, bool full,
             workloads::RelaxSchedule schedule =
                 workloads::RelaxSchedule::Default)
{
    if (name == "Gauss") {
        workloads::GaussParams p;
        p.n = full ? 250 : 150;
        return std::make_unique<workloads::GaussWorkload>(p);
    }
    if (name == "Qsort") {
        workloads::QsortParams p;
        p.n = full ? 500000 : 65536;
        return std::make_unique<workloads::QsortWorkload>(p);
    }
    if (name == "Relax") {
        workloads::RelaxParams p;
        p.interior = full ? 512 : 192;
        p.iterations = full ? 8 : 3;
        p.schedule = schedule;
        return std::make_unique<workloads::RelaxWorkload>(p);
    }
    if (name == "Psim") {
        workloads::PsimParams p;
        p.packetsPerProc = full ? 513 : 96;
        return std::make_unique<workloads::PsimWorkload>(p);
    }
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    std::exit(1);
}

/** Baseline paper machine (16 processors, 4x4 switches). */
inline core::MachineConfig
baseConfig(bool full, unsigned procs = 16)
{
    core::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.numModules = procs;
    cfg.cacheBytes = smallCache(full);
    cfg.lineBytes = 16;
    // Figure benches report timings; invariant checking stays off here
    // (tests and bench_micro run with it on).
    cfg.check.mode = check::CheckMode::Off;
    return cfg;
}

/** Run one benchmark on one configuration. */
inline core::RunMetrics
run(const std::string &name, const core::MachineConfig &cfg, bool full,
    workloads::RelaxSchedule schedule = workloads::RelaxSchedule::Default)
{
    auto w = makeWorkload(name, full, schedule);
    return workloads::runWorkload(*w, cfg).metrics;
}

/** Standard line sizes swept throughout the paper. */
inline const std::vector<unsigned> lineSizes = {8, 16, 64};

inline void
printHeaderRule()
{
    std::printf("--------------------------------------------------------"
                "----------------------\n");
}

} // namespace mcsim::bench

#endif // MCSIM_BENCH_COMMON_HH
