#include "mem/functional_memory.hh"

#include "sim/logging.hh"

namespace mcsim::mem
{

FunctionalMemory::FunctionalMemory(std::size_t initial_bytes)
    : bytes(initial_bytes, 0)
{}

void
FunctionalMemory::ensure(Addr limit)
{
    if (limit > bytes.size()) {
        std::size_t grown = bytes.size() ? bytes.size() : 1;
        while (grown < limit)
            grown *= 2;
        bytes.resize(grown, 0);
    }
}

std::uint64_t
FunctionalMemory::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
FunctionalMemory::fingerprint(Addr addr, std::size_t n) const
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    for (std::size_t i = 0; i < n; ++i) {
        const Addr a = addr + i;
        // Unbacked bytes read as zero, matching read().
        const std::uint8_t b = a < bytes.size() ? bytes[a] : 0;
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
FunctionalMemory::read(Addr addr, void *out, std::size_t n) const
{
    if (addr + n <= bytes.size()) {
        std::memcpy(out, bytes.data() + addr, n);
    } else {
        // Unbacked reads return zero; workloads initialize their data so
        // this only happens for never-written padding.
        std::memset(out, 0, n);
        if (addr < bytes.size()) {
            std::size_t avail = bytes.size() - addr;
            std::memcpy(out, bytes.data() + addr, avail);
        }
    }
}

void
FunctionalMemory::write(Addr addr, const void *in, std::size_t n)
{
    ensure(addr + n);
    std::memcpy(bytes.data() + addr, in, n);
}

std::uint32_t
FunctionalMemory::readU32(Addr addr) const
{
    std::uint32_t v;
    read(addr, &v, sizeof(v));
    return v;
}

void
FunctionalMemory::writeU32(Addr addr, std::uint32_t value)
{
    write(addr, &value, sizeof(value));
}

std::uint64_t
FunctionalMemory::readU64(Addr addr) const
{
    std::uint64_t v;
    read(addr, &v, sizeof(v));
    return v;
}

void
FunctionalMemory::writeU64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

std::int64_t
FunctionalMemory::readI64(Addr addr) const
{
    std::int64_t v;
    read(addr, &v, sizeof(v));
    return v;
}

void
FunctionalMemory::writeI64(Addr addr, std::int64_t value)
{
    write(addr, &value, sizeof(value));
}

double
FunctionalMemory::readF64(Addr addr) const
{
    double v;
    read(addr, &v, sizeof(v));
    return v;
}

void
FunctionalMemory::writeF64(Addr addr, double value)
{
    write(addr, &value, sizeof(value));
}

std::uint64_t
FunctionalMemory::testAndSet(Addr addr)
{
    const std::uint64_t old = readU64(addr);
    writeU64(addr, 1);
    return old;
}

} // namespace mcsim::mem
