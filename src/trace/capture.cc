#include "trace/capture.hh"

#include "sim/logging.hh"

namespace mcsim::trace
{

namespace
{

/** Project a processor op onto its stored form. */
Record
recordFor(const cpu::Processor::Op &op)
{
    Record rec;
    rec.kind = op.kind;
    switch (op.kind) {
      case OpKind::Exec:
        rec.cycles = op.cycles;
        break;
      case OpKind::Use:
        // The only field a Use carries. Tokens are assigned by the
        // processor sequentially per Load, so the same values reappear
        // under replay without being stored for Loads.
        rec.token = op.token;
        break;
      case OpKind::Load:
      case OpKind::LoadUse:
        rec.addr = op.addr;
        rec.width = op.width;
        rec.own = op.own;
        break;
      case OpKind::Store:
        rec.addr = op.addr;
        rec.value = op.value;
        rec.width = op.width;
        break;
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
        rec.addr = op.addr;
        break;
      case OpKind::SyncStore:
        rec.addr = op.addr;
        rec.value = op.value;
        break;
      case OpKind::Fence:
        break;
    }
    return rec;
}

} // namespace

TraceCapture::TraceCapture(const TraceHeader &header, ByteSink &sink)
    : writer(header, sink), procCount(header.procCount)
{}

void
TraceCapture::attach(core::Machine &machine)
{
    MCSIM_ASSERT(taps.empty(), "trace capture attached twice");
    if (machine.numProcs() != procCount) {
        fatal("trace: capture header declares %u procs but the machine "
              "has %u", procCount, machine.numProcs());
    }
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        taps.push_back(std::make_unique<ProcTap>(writer, p));
        machine.proc(p).setIssueSink(taps.back().get());
    }
}

void
TraceCapture::ProcTap::onIssue(const cpu::Processor::Op &op)
{
    writer.append(proc, recordFor(op));
}

} // namespace mcsim::trace
