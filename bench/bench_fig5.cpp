/**
 * @file
 * Reproduces paper Figure 5: percentage gain over SC1 with the large
 * ("64K") caches, 16 processors. The paper's headline here: Gauss's
 * gains collapse to under ~2% once its data set fits the cache, while
 * Qsort (whose working set still does not fit) keeps its gains.
 *
 * Usage: bench_fig5 [--full]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const bool full = parseFull(argc, argv);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::WO2,
        core::Model::RC};

    std::printf("Figure 5 reproduction: %% gain over SC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(full, true), full ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        core::RunMetrics base[3];
        for (std::size_t l = 0; l < lineSizes.size(); ++l) {
            auto cfg = baseConfig(full);
            cfg.cacheBytes = largeCache(full);
            cfg.lineBytes = lineSizes[l];
            base[l] = run(name, cfg, full);
        }
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                auto cfg = baseConfig(full);
                cfg.cacheBytes = largeCache(full);
                cfg.lineBytes = lineSizes[l];
                cfg.model = model;
                const auto m = run(name, cfg, full);
                std::printf(" %9.1f%%", core::percentGain(base[l], m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
