# format / format-check targets over the first-party tree, driven by
# the repo-root .clang-format profile. clang-format is optional
# tooling: when the host has no binary the targets are simply not
# defined (configure prints a note), mirroring how MCSIM_LINT degrades
# -- nothing in the default build pipeline depends on either target.

find_program(MCSIM_CLANG_FORMAT NAMES clang-format clang-format-15
             clang-format-14 clang-format-13)

if(NOT MCSIM_CLANG_FORMAT)
    message(STATUS "clang-format not found; format targets disabled")
    return()
endif()

file(GLOB_RECURSE MCSIM_FORMAT_SOURCES
     ${CMAKE_SOURCE_DIR}/src/*.cc ${CMAKE_SOURCE_DIR}/src/*.hh
     ${CMAKE_SOURCE_DIR}/tests/*.cc ${CMAKE_SOURCE_DIR}/tests/*.hh
     ${CMAKE_SOURCE_DIR}/bench/*.cc ${CMAKE_SOURCE_DIR}/bench/*.hh
     ${CMAKE_SOURCE_DIR}/examples/*.cc
     ${CMAKE_SOURCE_DIR}/tools/*.cc ${CMAKE_SOURCE_DIR}/tools/*.hh)

add_custom_target(format
    COMMAND ${MCSIM_CLANG_FORMAT} -i --style=file ${MCSIM_FORMAT_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format (in place) over first-party sources"
    VERBATIM)

add_custom_target(format-check
    COMMAND ${MCSIM_CLANG_FORMAT} --dry-run -Werror --style=file
            ${MCSIM_FORMAT_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format (dry run) over first-party sources"
    VERBATIM)
