#include "mc/explorer.hh"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/machine.hh"
#include "mem/protocol.hh"
#include "sim/logging.hh"

namespace mcsim::mc
{

const axiom::LitmusTest *
findLitmus(const std::string &name)
{
    for (const axiom::LitmusTest &t : axiom::litmusSuite()) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

core::MachineConfig
mcConfig(const McOptions &opt, const axiom::LitmusTest &test)
{
    core::MachineConfig cfg = axiom::litmusConfig(opt.model);
    // The smallest machine that runs the program: fewer ports means
    // fewer concurrently pending (src, dst) pools, which is what the
    // choice tree branches over.
    cfg.numProcs = static_cast<unsigned>(test.threads.size());
    cfg.numModules = 2;
    // Logical delivery moves one message per tick and litmus programs
    // are a few dozen messages; clamp the runaway guard down hard so a
    // livelocking schedule aborts (and is reported) quickly.
    cfg.maxCycles = 100000;
    if (opt.weaken) {
        // The runtime ordering linter would fatal on the very first
        // schedule (sync issued with references outstanding), before
        // the search ever branches. Demote it: the point of --weaken is
        // that the *explorer* finds a schedule on which the missing
        // sync ordering is observable -- as an axiom rejection or a
        // forbidden outcome -- and shrinks it to a replayable witness.
        cfg.check.ordering = false;
    }
    return cfg;
}

RunOutcome
runUnder(const McOptions &opt, ChoiceScheduler &sched)
{
    const axiom::LitmusTest *test = findLitmus(opt.litmus);
    MCSIM_ASSERT(test != nullptr, "unknown litmus test %s",
                 opt.litmus.c_str());
    core::MachineConfig cfg = mcConfig(opt, *test);
    cfg.choiceScheduler = &sched;

    std::function<void(core::Machine &)> prepare;
    if (opt.weaken) {
        prepare = [](core::Machine &machine) {
            for (unsigned p = 0; p < machine.numProcs(); ++p)
                machine.proc(p).injectDisableSyncOrderingForTest();
        };
    }

    RunOutcome out;
    try {
        out.run = axiom::runLitmus(*test, cfg, opt.seed, prepare);
    } catch (const FatalError &err) {
        // Invariant checker (CheckMode::Fatal), deadlock, watchdog, or
        // the maxCycles guard.
        out.violated = true;
        out.kind = "fatal";
        out.message = err.what();
        return out;
    }
    if (!out.run.axiom.ok) {
        out.violated = true;
        out.kind = "axiom";
        out.message = out.run.axiom.message;
        return out;
    }
    const core::ModelParams params = cfg.modelParams();
    if (test->allowed != nullptr &&
        !test->allowed(params, out.run.hwReads)) {
        out.violated = true;
        out.kind = "forbidden-outcome";
        out.message = strprintf(
            "hardware outcome (%s) of %s is forbidden under %s",
            axiom::outcomeString(out.run.hwReads).c_str(),
            test->name.c_str(), core::modelName(opt.model));
        return out;
    }
    if (test->allowed != nullptr &&
        !test->allowed(params, out.run.funcReads)) {
        out.violated = true;
        out.kind = "forbidden-outcome";
        out.message = strprintf(
            "functional outcome (%s) of %s is forbidden under %s",
            axiom::outcomeString(out.run.funcReads).c_str(),
            test->name.c_str(), core::modelName(opt.model));
        return out;
    }
    return out;
}

std::string
renderTimeline(const std::vector<DeliveryRecord> &timeline)
{
    std::string s;
    for (const DeliveryRecord &d : timeline) {
        s += strprintf(
            "  [t=%llu] %s %c%u -> %c%u  %-18s line 0x%llx seq %u\n",
            static_cast<unsigned long long>(d.tick),
            d.requestNet ? "req " : "resp", d.requestNet ? 'P' : 'M',
            d.src, d.requestNet ? 'M' : 'P', d.dst,
            mem::msgKindName(static_cast<mem::MsgKind>(d.kind)),
            static_cast<unsigned long long>(d.lineAddr), d.seq);
    }
    return s;
}

namespace
{

/** One node of the DFS path (a choice point of the current run). */
struct NodeState
{
    ChoiceKind kind = ChoiceKind::NetDeliver;
    unsigned chosen = 0;
    unsigned executedCount = 1;  ///< branches taken at this node so far
    std::vector<ChoiceOption> options;
    /** Sleep set: on arrival, plus (DPOR) every executed move. */
    std::vector<ChoiceOption> sleep;
    std::vector<bool> explored;  ///< naive-enumeration bookkeeping
};

/** Shrink a violating choice vector to a locally minimal one and
 *  render the replayable counterexample. */
McViolation
minimizeAndRender(const McOptions &opt, McStats &stats,
                  std::vector<unsigned> vec)
{
    auto violates = [&](const std::vector<unsigned> &v) {
        ReplayScheduler replay(v);
        stats.minimizationRuns += 1;
        return runUnder(opt, replay).violated;
    };
    auto trim = [](std::vector<unsigned> &v) {
        while (!v.empty() && v.back() == 0)
            v.pop_back();
    };

    // Replay picks index 0 past the vector's end, so a trailing zero
    // is dead weight by construction.
    trim(vec);
    // Shortest violating prefix (everything after it replays as 0).
    for (std::size_t len = 0; len < vec.size(); ++len) {
        std::vector<unsigned> t(vec.begin(),
                                vec.begin() + static_cast<long>(len));
        if (violates(t)) {
            vec = std::move(t);
            break;
        }
    }
    // Greedy per-entry zeroing of what is left.
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec[i] == 0)
            continue;
        const unsigned saved = vec[i];
        vec[i] = 0;
        if (!violates(vec))
            vec[i] = saved;
    }
    trim(vec);

    // Final authoritative replay of the minimal vector.
    ReplayScheduler replay(vec);
    RunOutcome out = runUnder(opt, replay);
    stats.minimizationRuns += 1;
    MCSIM_ASSERT(out.violated,
                 "minimized vector no longer violates: replay is "
                 "nondeterministic");

    McViolation v;
    v.kind = out.kind;
    v.message = out.message;
    v.vector = vec;
    v.report = strprintf(
        "counterexample (%s, %s on %s):\n  %s\nreplay vector: %s\n"
        "message timeline:\n%s",
        v.kind.c_str(), opt.litmus.c_str(), core::modelName(opt.model),
        v.message.c_str(), formatVector(vec).c_str(),
        renderTimeline(replay.timeline()).c_str());
    return v;
}

} // namespace

McResult
explore(const McOptions &opt)
{
    MCSIM_ASSERT(findLitmus(opt.litmus) != nullptr,
                 "unknown litmus test %s", opt.litmus.c_str());
    McResult res;
    std::vector<NodeState> path;

    while (true) {
        if (res.stats.schedulesRun >= opt.maxSchedules) {
            res.stats.budgetExhausted = true;
            break;
        }

        std::vector<PrefixNode> prefix;
        prefix.reserve(path.size());
        for (const NodeState &node : path)
            prefix.push_back(PrefixNode{node.chosen, node.sleep});
        VectorScheduler sched(std::move(prefix), opt.dpor);

        const RunOutcome out = runUnder(opt, sched);
        res.stats.schedulesRun += 1;
        const std::vector<ChoiceRecord> &recs = sched.records();
        res.stats.choicePoints += recs.size();
        res.stats.maxDepthSeen =
            std::max<std::uint64_t>(res.stats.maxDepthSeen, recs.size());
        if (sched.sleepBlocked())
            res.stats.sleepBlockedRuns += 1;

        if (out.violated) {
            std::vector<unsigned> vec;
            vec.reserve(recs.size());
            for (const ChoiceRecord &r : recs)
                vec.push_back(r.chosen);
            res.violation = minimizeAndRender(opt, res.stats,
                                              std::move(vec));
            return res;
        }

        // Extend the search path with the fresh choice points this run
        // discovered beyond the forced prefix.
        for (std::size_t i = path.size(); i < recs.size(); ++i) {
            NodeState node;
            node.kind = recs[i].kind;
            node.chosen = recs[i].chosen;
            node.options = recs[i].options;
            node.sleep = recs[i].sleep;
            if (node.options.size() > 1)
                res.stats.branchPoints += 1;
            path.push_back(std::move(node));
        }

        // Backtrack: deepest node with an unexplored (and, under DPOR,
        // non-sleeping) alternative becomes the next branch.
        bool advanced = false;
        while (!path.empty()) {
            NodeState &node = path.back();
            const unsigned n = static_cast<unsigned>(node.options.size());
            if (path.size() > opt.maxDepth) {
                if (n > 1)
                    res.stats.depthClipped = true;
                path.pop_back();
                continue;
            }
            unsigned next = n;
            if (opt.dpor) {
                if (!sleepContains(node.sleep,
                                   node.options[node.chosen]))
                    node.sleep.push_back(node.options[node.chosen]);
                for (unsigned j = 0; j < n; ++j) {
                    if (!sleepContains(node.sleep, node.options[j])) {
                        next = j;
                        break;
                    }
                }
            } else {
                if (node.explored.empty())
                    node.explored.assign(n, false);
                node.explored[node.chosen] = true;
                for (unsigned j = 0; j < n; ++j) {
                    if (!node.explored[j]) {
                        next = j;
                        break;
                    }
                }
            }
            if (next < n) {
                node.chosen = next;
                node.executedCount += 1;
                advanced = true;
                break;
            }
            if (opt.dpor && n > node.executedCount) {
                // Alternatives this node never had to execute: the
                // sleep-set reduction's measurable savings.
                res.stats.sleepPruned += n - node.executedCount;
            }
            path.pop_back();
        }
        if (!advanced) {
            res.complete =
                !res.stats.depthClipped && !res.stats.budgetExhausted;
            break;
        }
    }
    return res;
}

} // namespace mcsim::mc
