#include "svc/chaos_svc.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "fault/fault.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "svc/atomic_file.hh"
#include "svc/coordinator.hh"
#include "svc/merge.hh"
#include "svc/svc_io.hh"
#include "svc/worker.hh"

namespace mcsim::svc
{

namespace
{

using fault::DecisionChain;

/** Distinct decision-site tags folded into the round's hash chain. */
enum Site : std::uint64_t
{
    siteCoordCrash = 0x73766363726173ull,
    siteStall = 0x73766373746c6cull,
    siteKill = 0x7376636b696c6cull,
    siteKillCount = 0x7376636b637474ull,
    siteIoArm = 0x737663696f6172ull,
    siteIoKind = 0x737663696f6b64ull,
    siteIoOp = 0x737663696f6f70ull,
    siteTear = 0x73766374656172ull,
    siteTearLen = 0x737663746c656eull,
    siteTearByte = 0x73766374627974ull,
    siteCompact = 0x737663636d7074ull,
};

/**
 * Faulting seam: the Nth operation of the armed kind fails, once. A
 * short write really lands half its bytes, so the torn tail on disk is
 * produced by the genuine write path, not synthesized.
 */
class ChaosSvcIo : public SvcIo
{
  public:
    enum class Kind
    {
        WriteShort,
        FlushFail,
        RenameFail,
    };

    ChaosSvcIo(Kind kind, unsigned fault_op)
        : kind_(kind), faultOp(fault_op)
    {
    }

    bool fired() const { return fired_; }

    std::size_t
    write(const void *data, std::size_t size, std::FILE *file) override
    {
        if (kind_ == Kind::WriteShort && !fired_ && ++ops >= faultOp) {
            fired_ = true;
            const std::size_t half = size / 2;
            return SvcIo::write(data, half, file) == half ? half : 0;
        }
        return SvcIo::write(data, size, file);
    }

    int
    flush(std::FILE *file) override
    {
        if (kind_ == Kind::FlushFail && !fired_ && ++ops >= faultOp) {
            fired_ = true;
            // The buffered bytes may still land when the writer's
            // destructor closes the stream: the classic ambiguous
            // failure (reported dead, actually durable) resume must
            // absorb.
            return EOF;
        }
        return SvcIo::flush(file);
    }

    int
    rename(const char *from, const char *to) override
    {
        if (kind_ == Kind::RenameFail && !fired_ && ++ops >= faultOp) {
            fired_ = true;
            return -1;
        }
        return SvcIo::rename(from, to);
    }

  private:
    Kind kind_;
    unsigned faultOp;
    unsigned ops = 0;
    bool fired_ = false;
};

/** Install a seam override for one scope; restore on the way out. */
class IoGuard
{
  public:
    explicit IoGuard(SvcIo *io) : prev(installSvcIo(io)) {}
    ~IoGuard() { installSvcIo(prev); }
    IoGuard(const IoGuard &) = delete;
    IoGuard &operator=(const IoGuard &) = delete;

  private:
    SvcIo *prev;
};

/** Whole file as bytes ("" when missing): the identity comparand. */
std::string
slurp(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return "";
    std::string data;
    char buf[1 << 16];
    for (;;) {
        const std::size_t got = std::fread(buf, 1, sizeof(buf), file);
        data.append(buf, got);
        if (got < sizeof(buf))
            break;
    }
    std::fclose(file);
    return data;
}

/** Append seed-derived garbage to @p path: the torn in-flight frame a
 *  SIGKILL mid-write would have left. */
void
appendGarbage(const std::string &path, DecisionChain &chain)
{
    if (!journalExists(path))
        return;
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (file == nullptr)
        return;
    const unsigned len = 1 + chain.hash(siteTearLen) % 48;
    for (unsigned i = 0; i < len; ++i) {
        const std::uint8_t byte =
            static_cast<std::uint8_t>(chain.hash(siteTearByte) & 0xff);
        std::fwrite(&byte, 1, 1, file);
    }
    std::fclose(file);
}

/** Grid-global indices with a valid frame in @p path. */
std::set<std::size_t>
journaledIn(const std::string &path)
{
    std::set<std::size_t> got;
    if (!journalExists(path))
        return got;
    const JournalScan scan = scanJournal(path);
    if (scan.headerTorn)
        return got;
    for (const JournalFrame &frame : scan.frames)
        got.insert(frame.index);
    return got;
}

/** One supervised unit in the round's in-process coordinator model. */
struct Asg
{
    Assignment asg;
    std::string path;
    unsigned strikes = 0;
    bool done = false;
    bool failed = false; ///< primary handed off to steal slices
};

SvcChaosRound
runRound(const ShardPlan &plan, const std::string &round_dir,
         const SvcChaosPreset &preset, std::uint64_t round_seed,
         std::size_t round_number, const SvcChaosConfig &config,
         const std::vector<std::size_t> &poison,
         const std::string &ref_doc, const std::string &ref_csv)
{
    SvcChaosRound round;
    round.round = round_number;
    DecisionChain chain(round_seed);

    removeTree(round_dir);
    ensureDirectory(round_dir);

    const std::uint32_t shards = plan.shardCount;
    const std::size_t total = plan.grid.points.size();
    std::vector<std::string> primaries;
    primaries.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        primaries.push_back(plan.journalPath(round_dir, s));

    std::set<std::size_t> quarantined;
    std::map<std::size_t, unsigned> blame;
    std::vector<Asg> asgs;

    // Rebuild the supervision state purely from disk: the same
    // discovery a restarted coordinator performs. Strikes are dropped
    // -- exactly what a real restart forgets.
    auto rebuild = [&]() {
        asgs.clear();
        std::vector<unsigned> foundSlices(shards, 0);
        for (const std::string &path : findStealJournals(plan, round_dir)) {
            const JournalScan scan = scanJournal(path);
            if (!scan.headerTorn &&
                foundSlices[scan.header.shardIndex] == 0)
                foundSlices[scan.header.shardIndex] =
                    scan.header.stealSlices;
        }
        for (std::uint32_t s = 0; s < shards; ++s) {
            if (foundSlices[s] == 0) {
                Asg a;
                a.asg.shard = s;
                a.path = primaries[s];
                asgs.push_back(std::move(a));
                continue;
            }
            for (unsigned k = 0; k < foundSlices[s]; ++k) {
                Asg a;
                a.asg.shard = s;
                a.asg.steal = true;
                a.asg.slice = static_cast<std::uint16_t>(k);
                a.asg.slices = static_cast<std::uint16_t>(foundSlices[s]);
                a.path = plan.stealJournalPath(round_dir, s, a.asg.slice,
                                               a.asg.slices);
                asgs.push_back(std::move(a));
            }
        }
    };

    // An assignment's runnable target: its points minus the quarantine.
    auto targetOf = [&](const Asg &a) {
        std::vector<std::size_t> target;
        const std::vector<std::size_t> members =
            a.asg.steal ? stealSliceMembers(plan, a.asg.shard,
                                            a.asg.slice, a.asg.slices,
                                            primaries[a.asg.shard])
                        : plan.shardIndices(a.asg.shard);
        for (const std::size_t index : members)
            if (quarantined.count(index) == 0)
                target.push_back(index);
        return target;
    };

    auto asgDone = [&](const Asg &a) {
        const std::set<std::size_t> got = journaledIn(a.path);
        for (const std::size_t index : targetOf(a))
            if (got.count(index) == 0)
                return false;
        return true;
    };

    auto coverageComplete = [&]() {
        std::vector<bool> covered(total, false);
        auto mark = [&](const std::string &path) {
            for (const std::size_t index : journaledIn(path))
                covered[index] = true;
        };
        for (const std::string &path : primaries)
            mark(path);
        for (const std::string &path : findStealJournals(plan, round_dir))
            mark(path);
        for (std::size_t i = 0; i < total; ++i)
            if (!covered[i] && quarantined.count(i) == 0)
                return false;
        return true;
    };

    // Escalate a given-up primary into steal slices over its frozen
    // remainder (mirrors runCoordinator).
    auto escalate = [&](std::size_t id) {
        // Copy out before the push_backs below reallocate asgs.
        asgs[id].failed = true;
        const std::uint32_t victim = asgs[id].asg.shard;
        const std::set<std::size_t> got = journaledIn(asgs[id].path);
        std::size_t remainder = 0;
        for (const std::size_t index : plan.shardIndices(victim))
            remainder += got.count(index) == 0 ? 1 : 0;
        if (remainder == 0)
            return;
        const unsigned fanout =
            config.stealFanout == 0 ? 1 : config.stealFanout;
        const unsigned slices_n = static_cast<unsigned>(
            std::min<std::size_t>(fanout, remainder));
        round.steals += slices_n;
        for (unsigned k = 0; k < slices_n; ++k) {
            Asg steal;
            steal.asg.shard = victim;
            steal.asg.steal = true;
            steal.asg.slice = static_cast<std::uint16_t>(k);
            steal.asg.slices = static_cast<std::uint16_t>(slices_n);
            steal.path = plan.stealJournalPath(round_dir, victim,
                                               steal.asg.slice,
                                               steal.asg.slices);
            asgs.push_back(std::move(steal));
        }
    };

    // Judge one finished (or skipped) attempt: reset strikes on
    // durable progress, escalate a primary that exhausted its retries,
    // and NEVER permanently abandon coverable work -- permanence comes
    // only from blame-driven quarantine, so a poison-free round always
    // converges whatever the fault history.
    auto bump = [&](std::size_t id, bool progressed) {
        Asg &a = asgs[id];
        a.strikes = progressed ? 0 : a.strikes + 1;
        if (a.strikes <= config.maxRetries)
            return;
        if (!a.asg.steal) {
            escalate(id);
            return;
        }
        a.strikes = 0;
    };

    rebuild();
    const std::size_t cap = 60 + 40 * total;
    std::size_t cursor = 0;
    while (!coverageComplete()) {
        if (++round.attempts > cap) {
            round.error = strprintf(
                "round did not converge within %zu attempts", cap);
            break;
        }
        // Next live assignment, round-robin for fairness.
        std::size_t id = asgs.size();
        for (std::size_t probe = 0; probe < asgs.size(); ++probe) {
            std::size_t i = (cursor + probe) % asgs.size();
            Asg &a = asgs[i];
            if (a.done || a.failed)
                continue;
            if (asgDone(a)) {
                a.done = true;
                continue;
            }
            id = i;
            break;
        }
        if (id == asgs.size()) {
            round.error = "coverage incomplete with no runnable "
                          "assignment";
            break;
        }
        cursor = id + 1;
        Asg &a = asgs[id];

        if (chain.draw(siteCoordCrash) < preset.coordCrashRate) {
            // The coordinator dies mid-flight: every in-memory fact is
            // lost; only the journals survive.
            ++round.coordCrashes;
            rebuild();
            cursor = 0;
            continue;
        }

        if (chain.draw(siteStall) < preset.stallRate) {
            // A stuck worker journals nothing until its lease is
            // revoked: a barren attempt.
            ++round.stalls;
            bump(id, false);
            continue;
        }

        WorkerOptions opts;
        opts.threads = 1;
        opts.progress = false;
        opts.skipIndices.assign(quarantined.begin(), quarantined.end());
        opts.poisonIndices = poison;
        if (chain.draw(siteKill) < preset.killRate) {
            ++round.kills;
            opts.stopAfter = 1 + chain.hash(siteKillCount) % 3;
        }

        bool armed = false;
        ChaosSvcIo::Kind kind = ChaosSvcIo::Kind::WriteShort;
        unsigned fault_op = 1;
        if (chain.draw(siteIoArm) < preset.ioFaultRate) {
            armed = true;
            ++round.ioFaults;
            kind = chain.hash(siteIoKind) % 2 == 0
                       ? ChaosSvcIo::Kind::WriteShort
                       : ChaosSvcIo::Kind::FlushFail;
            fault_op = 1 + static_cast<unsigned>(chain.hash(siteIoOp) % 6);
        }
        ChaosSvcIo io(kind, fault_op);

        const std::size_t before = journaledIn(a.path).size();
        bool died = false;
        bool explained = false;
        WorkerResult result;
        {
            IoGuard guard(armed ? &io : nullptr);
            try {
                result = a.asg.steal
                             ? runStealWorker(plan, a.asg.shard,
                                              a.asg.slice, a.asg.slices,
                                              primaries[a.asg.shard],
                                              a.path, opts)
                             : runShardWorker(plan, a.asg.shard, a.path,
                                              opts);
            } catch (const FatalError &) {
                died = true;
                explained = armed && io.fired();
            }
        }

        if (chain.draw(siteTear) < preset.tearRate) {
            ++round.tears;
            appendGarbage(a.path, chain);
        }

        const std::size_t after = journaledIn(a.path).size();
        const bool progressed = after > before;

        if (died && !explained) {
            // Unexplained death: neither a stall nor an armed I/O
            // fault. Blame the first point the attempt would have run
            // next; three strikes of blame quarantines it, which is
            // what pins the failed[] section to exactly the poisoned
            // set.
            const std::set<std::size_t> got = journaledIn(a.path);
            for (const std::size_t index : targetOf(a)) {
                if (got.count(index) != 0)
                    continue;
                if (++blame[index] >= 3) {
                    quarantined.insert(index);
                    // Quarantine resets every strike: the run gets a
                    // fresh chance to converge around the bad point.
                    for (Asg &x : asgs)
                        x.strikes = 0;
                }
                break;
            }
        }

        if (!died && result.done) {
            a.done = true;
            continue;
        }
        bump(id, progressed);
    }

    round.quarantined.assign(quarantined.begin(), quarantined.end());
    if (!round.error.empty())
        return round;

    // Invariant 1: the quarantine is exactly the poison set.
    if (round.quarantined != poison) {
        round.error = strprintf(
            "quarantined %zu point(s), expected the %zu poisoned",
            round.quarantined.size(), poison.size());
        return round;
    }

    // Invariant 2: the merged document and CSV are byte-identical to
    // the fault-free reference (built with the same poison skipped).
    std::vector<std::string> paths = primaries;
    for (const std::string &path : findStealJournals(plan, round_dir))
        paths.push_back(path);
    MergeOptions mopts;
    mopts.degraded = !poison.empty();
    const MergeResult merged = mergeJournals(plan, paths, mopts);
    const std::string doc = merged.document.dump();
    round.identical = doc == ref_doc && merged.csv == ref_csv;
    if (!round.identical) {
        round.error = "merged output differs from the fault-free "
                      "reference";
        return round;
    }

    // Invariant 3: compacting every journal (including a seam-failed
    // compaction attempt that must leave its input untouched) and
    // re-merging reproduces the same bytes; compaction is idempotent.
    for (const std::string &path : paths) {
        if (!journalExists(path))
            continue;
        if (scanJournal(path).headerTorn)
            continue;
        if (chain.draw(siteCompact) < preset.ioFaultRate) {
            const std::string untouched = slurp(path);
            ChaosSvcIo fail(ChaosSvcIo::Kind::RenameFail, 1);
            bool threw = false;
            {
                IoGuard guard(&fail);
                try {
                    compactJournal(path, path);
                } catch (const FatalError &) {
                    threw = true;
                }
            }
            if (!threw || slurp(path) != untouched) {
                round.error = strprintf(
                    "failed compaction of '%s' did not leave the "
                    "input untouched",
                    path.c_str());
                return round;
            }
        }
        compactJournal(path, path);
        ++round.compactions;
        const std::string once = slurp(path);
        compactJournal(path, path);
        if (slurp(path) != once) {
            round.error = strprintf("compaction of '%s' is not "
                                    "idempotent",
                                    path.c_str());
            return round;
        }
    }
    const MergeResult remerged = mergeJournals(plan, paths, mopts);
    round.compactIdentical =
        remerged.document.dump() == doc && remerged.csv == merged.csv;
    if (!round.compactIdentical) {
        round.error = "compact-then-remerge changed the merged bytes";
        return round;
    }

    round.ok = true;
    return round;
}

} // namespace

const std::vector<std::string> &
svcChaosPresetNames()
{
    static const std::vector<std::string> names = {"light", "standard",
                                                   "heavy"};
    return names;
}

SvcChaosPreset
svcChaosPreset(const std::string &name)
{
    SvcChaosPreset p;
    if (name == "light") {
        p.killRate = 0.25;
        p.stallRate = 0.10;
        p.tearRate = 0.20;
        p.ioFaultRate = 0.10;
        p.coordCrashRate = 0.05;
        return p;
    }
    if (name == "standard") {
        p.killRate = 0.45;
        p.stallRate = 0.15;
        p.tearRate = 0.30;
        p.ioFaultRate = 0.20;
        p.coordCrashRate = 0.10;
        return p;
    }
    if (name == "heavy") {
        p.killRate = 0.60;
        p.stallRate = 0.25;
        p.tearRate = 0.45;
        p.ioFaultRate = 0.35;
        p.coordCrashRate = 0.20;
        return p;
    }
    fatal("unknown svc-chaos preset '%s' (light/standard/heavy)",
          name.c_str());
}

bool
SvcChaosReport::ok() const
{
    if (rounds.empty())
        return false;
    for (const SvcChaosRound &round : rounds)
        if (!round.ok)
            return false;
    return true;
}

std::string
SvcChaosReport::summary() const
{
    std::string out = strprintf(
        "svc-chaos grid=%s preset=%s seed=%llu rounds=%zu\n",
        grid.c_str(), preset.c_str(),
        static_cast<unsigned long long>(seed), rounds.size());
    for (const SvcChaosRound &r : rounds) {
        out += strprintf(
            "round %03zu: %zu attempts, %zu kills, %zu stalls, %zu "
            "tears, %zu io-faults, %zu coord-crashes, %zu steals, %zu "
            "quarantined: %s\n",
            r.round, r.attempts, r.kills, r.stalls, r.tears, r.ioFaults,
            r.coordCrashes, r.steals, r.quarantined.size(),
            r.ok ? "ok" : r.error.c_str());
    }
    out += ok() ? "svc-chaos: OK (every round merged byte-identical)"
                : "svc-chaos: FAILED";
    return out;
}

exp::Json
SvcChaosReport::toJson() const
{
    exp::Json doc = exp::Json::object();
    doc["schema"] = exp::Json("mcsim-svc-chaos-v1");
    doc["grid"] = exp::Json(grid);
    doc["preset"] = exp::Json(preset);
    doc["seed"] = exp::Json(seed);
    doc["ok"] = exp::Json(ok());
    exp::Json list = exp::Json::array();
    for (const SvcChaosRound &r : rounds) {
        exp::Json entry = exp::Json::object();
        entry["round"] = exp::Json(static_cast<std::uint64_t>(r.round));
        entry["attempts"] =
            exp::Json(static_cast<std::uint64_t>(r.attempts));
        entry["kills"] = exp::Json(static_cast<std::uint64_t>(r.kills));
        entry["stalls"] =
            exp::Json(static_cast<std::uint64_t>(r.stalls));
        entry["tears"] = exp::Json(static_cast<std::uint64_t>(r.tears));
        entry["io_faults"] =
            exp::Json(static_cast<std::uint64_t>(r.ioFaults));
        entry["coord_crashes"] =
            exp::Json(static_cast<std::uint64_t>(r.coordCrashes));
        entry["steals"] =
            exp::Json(static_cast<std::uint64_t>(r.steals));
        entry["compactions"] =
            exp::Json(static_cast<std::uint64_t>(r.compactions));
        exp::Json quarantine = exp::Json::array();
        for (const std::size_t index : r.quarantined)
            quarantine.push(
                exp::Json(static_cast<std::uint64_t>(index)));
        entry["quarantined"] = std::move(quarantine);
        entry["identical"] = exp::Json(r.identical);
        entry["compact_identical"] = exp::Json(r.compactIdentical);
        entry["ok"] = exp::Json(r.ok);
        if (!r.error.empty())
            entry["error"] = exp::Json(r.error);
        list.push(std::move(entry));
    }
    doc["rounds"] = std::move(list);
    return doc;
}

SvcChaosReport
runSvcChaos(const ShardPlan &plan, const std::string &dir,
            const SvcChaosConfig &config)
{
    const SvcChaosPreset preset = svcChaosPreset(config.preset);
    if (config.rounds == 0)
        fatal("svc-chaos needs at least one round");
    std::vector<std::size_t> poison = config.poison;
    std::sort(poison.begin(), poison.end());
    poison.erase(std::unique(poison.begin(), poison.end()),
                 poison.end());
    for (const std::size_t index : poison) {
        if (index >= plan.grid.points.size())
            fatal("svc-chaos poison index %zu is out of range (grid "
                  "has %zu points)",
                  index, plan.grid.points.size());
    }
    ensureDirectory(dir);

    SvcChaosReport report;
    report.grid = plan.grid.name;
    report.preset = config.preset;
    report.seed = config.seed;

    // The fault-free reference every round must reproduce: a clean
    // supervised run with the poison set skipped, merged with the same
    // degradedness the rounds will use. Single-threaded for full
    // determinism (payload bytes are thread-invariant anyway; this is
    // belt and braces).
    const std::string ref_dir = dir + "/reference";
    removeTree(ref_dir);
    ensureDirectory(ref_dir);
    WorkerOptions ref_opts;
    ref_opts.threads = 1;
    ref_opts.progress = false;
    ref_opts.skipIndices = poison;
    std::vector<std::string> ref_paths;
    for (std::uint32_t s = 0; s < plan.shardCount; ++s) {
        ref_paths.push_back(plan.journalPath(ref_dir, s));
        runShardWorker(plan, s, ref_paths.back(), ref_opts);
    }
    MergeOptions ref_merge;
    ref_merge.degraded = !poison.empty();
    const MergeResult reference = mergeJournals(plan, ref_paths,
                                                ref_merge);
    const std::string ref_doc = reference.document.dump();
    const std::string &ref_csv = reference.csv;

    for (std::size_t r = 0; r < config.rounds; ++r) {
        const std::uint64_t round_seed = splitmix64(
            config.seed ^ splitmix64(0x9e3779b97f4a7c15ull + r));
        const std::string round_dir =
            strprintf("%s/round-%03zu", dir.c_str(), r);
        SvcChaosRound round =
            runRound(plan, round_dir, preset, round_seed, r, config,
                     poison, ref_doc, ref_csv);
        if (config.progress) {
            std::fprintf(
                stderr,
                "svc-chaos round %03zu: %zu attempts, %zu kills, %zu "
                "stalls, %zu tears, %zu io-faults, %zu coord-crashes, "
                "%zu steals, %zu quarantined: %s\n",
                round.round, round.attempts, round.kills, round.stalls,
                round.tears, round.ioFaults, round.coordCrashes,
                round.steals, round.quarantined.size(),
                round.ok ? "ok" : round.error.c_str());
        }
        const bool keep = config.keepJournals || !round.ok;
        report.rounds.push_back(std::move(round));
        if (!keep)
            removeTree(round_dir);
    }
    if (!config.keepJournals)
        removeTree(ref_dir);
    return report;
}

} // namespace mcsim::svc
