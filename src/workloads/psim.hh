/**
 * @file
 * Psim: a parallel discrete simulation of a multistage interconnection
 * network -- the simulator simulating (a small version of) itself (paper
 * section 3.3).
 *
 * The workload advances packets with small payloads through an Omega
 * network of 2x2 switches whose port queues live in shared memory (the
 * paper's Psim simulates a 64-input network of 4x4 switches; the scaled
 * version simulates a 16-input network of 2x2 switches so the queue state
 * stays in the same fits-in-the-cache regime -- see DESIGN.md). Queue
 * cells are written by one processor and read by another every simulated
 * cycle, so most misses are invalidation misses (the paper reports 70%);
 * destinations are skewed toward a few hot ports, which concentrates
 * accesses on a few lines and hence a few memory modules (the paper
 * reports a factor-of-six module utilization spread); and every simulated
 * cycle takes barriers plus per-switch locks, giving Psim the highest
 * synchronization rate of the four benchmarks. Per-switch statistics and
 * per-input state records are updated each cycle by their owners,
 * providing the high-locality references that put the overall hit rate
 * near the paper's ~90%.
 */

#ifndef MCSIM_WORKLOADS_PSIM_HH
#define MCSIM_WORKLOADS_PSIM_HH

#include <vector>

#include "cpu/sync.hh"
#include "net/topology.hh"
#include "workloads/costs.hh"
#include "workloads/workload.hh"

namespace mcsim::workloads
{

/** Psim configuration. */
struct PsimParams
{
    /** Simulated network inputs (power of two; default 16). */
    unsigned simProcs = 16;
    /** Packets each simulated input injects (paper: 513; scaled: 96). */
    unsigned packetsPerProc = 96;
    /** Port queue capacity in packets. */
    unsigned ringCap = 2;
    /** Payload words carried (and copied) per packet. */
    unsigned payloadWords = 4;
    /** Fraction of packets aimed at the hot destinations. */
    double hotFraction = 0.3;
    /** Number of hot destination ports. */
    unsigned hotDests = 2;
    /** Packets moved per port per simulated cycle. */
    unsigned movesPerPort = 2;
    /** Per-processor event-list words scanned each simulated cycle
     *  (the simulator's own private bookkeeping; mostly cache hits). */
    unsigned localWords = 96;
    std::uint64_t seed = 31337;
    /** Barrier implementation between simulated cycles. */
    cpu::BarrierKind barrierKind = cpu::BarrierKind::Dissemination;
};

/** Network-simulator benchmark. */
class PsimWorkload : public Workload
{
  public:
    explicit PsimWorkload(PsimParams params = {});

    std::string name() const override { return "Psim"; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;

    /** Delivered-packet counter and ring count words only: Psim is a
     *  dynamically scheduled simulation, so per-switch statistics and
     *  per-input state records count simulated rounds (which vary with
     *  timing) and drained ring slots keep stale compacted payloads.
     *  The timing-invariant semantic result is that every injected
     *  packet was delivered and every port ring drained to empty. */
    std::uint64_t resultFingerprint(core::Machine &machine) const override;

  private:
    static SimTask body(cpu::Processor &proc, PsimWorkload &w,
                        unsigned pid, unsigned n_procs);

    unsigned stages() const { return topo.stages(); }
    unsigned switchesPerStage() const { return cfg.simProcs / 2; }
    unsigned numSwitches() const { return stages() * switchesPerStage(); }
    unsigned slotWords() const { return 1 + cfg.payloadWords; }

    /** Global switch id for (stage, switch-within-stage). */
    unsigned swId(unsigned stage, unsigned idx) const
    {
        return stage * switchesPerStage() + idx;
    }

    /** Queue layout per switch port: count word + ringCap packet slots,
     *  each slot = header word + payload words. @{ */
    Addr
    queueBase(unsigned sw, unsigned port) const
    {
        return queuesBase + (static_cast<Addr>(sw) * 2 + port) *
                                (1 + static_cast<Addr>(cfg.ringCap) *
                                         slotWords()) *
                                8;
    }
    Addr countAddr(unsigned sw, unsigned port) const
    {
        return queueBase(sw, port);
    }
    Addr
    slotAddr(unsigned sw, unsigned port, unsigned slot) const
    {
        return queueBase(sw, port) +
               8 + static_cast<Addr>(slot) * slotWords() * 8;
    }
    /** @} */

    /** Per-switch statistics record (statWords 64-bit words). @{ */
    static constexpr unsigned statWords = 4;
    Addr
    statAddr(unsigned sw, unsigned word) const
    {
        return statsBase + (static_cast<Addr>(sw) * statWords + word) * 8;
    }
    /** @} */

    /** Per-sim-input state record (stateWords words). @{ */
    static constexpr unsigned stateWords = 4;
    Addr
    stateAddr(unsigned sp, unsigned word) const
    {
        return statesBase + (static_cast<Addr>(sp) * stateWords + word) * 8;
    }
    /** @} */

    PsimParams cfg;
    OpCosts costs;
    net::OmegaTopology topo;
    Addr queuesBase = 0;
    Addr statsBase = 0;
    Addr statesBase = 0;
    Addr localBase = 0;      ///< per-processor event-list regions
    Addr deliveredAddr = 0;  ///< global delivered-packet counter
    cpu::LockVar deliveredLock{};
    std::vector<cpu::LockVar> switchLocks;  ///< one per global switch
    cpu::BarrierObj barrier{};
    std::vector<cpu::BarrierCtx> barrierCtx;
    /** Pre-generated packet destinations per sim input (deterministic). */
    std::vector<std::vector<unsigned>> packetDests;
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_PSIM_HH
