/**
 * @file
 * Synthetic microworkload: a parameterized reference stream used by the
 * unit/property tests and the ablation benches. Each processor walks a
 * private region plus an optionally shared region with a configurable
 * store fraction, compute density, and synchronization rate.
 */

#ifndef MCSIM_WORKLOADS_SYNTHETIC_HH
#define MCSIM_WORKLOADS_SYNTHETIC_HH

#include <vector>

#include "cpu/sync.hh"
#include "workloads/workload.hh"

namespace mcsim::workloads
{

/** Synthetic stream configuration. */
struct SyntheticParams
{
    /** Shared references each processor issues. */
    unsigned refsPerProc = 2000;
    /** Fraction of references that are stores. */
    double storeFraction = 0.3;
    /** Per-processor private-region size in 64-bit words. */
    unsigned privateWords = 2048;
    /** Fraction of references aimed at the common shared region. */
    double sharedFraction = 0.2;
    /** Shared-region size in 64-bit words. */
    unsigned sharedWords = 512;
    /** Compute cycles charged between references. */
    unsigned execBetween = 4;
    /** Take a lock-protected critical section every N refs (0 = never). */
    unsigned lockEvery = 0;
    /** Join a barrier every N refs (0 = never). */
    unsigned barrierEvery = 0;
    std::uint64_t seed = 99;
    /** Barrier implementation. */
    cpu::BarrierKind barrierKind = cpu::BarrierKind::Dissemination;
};

/** Configurable synthetic benchmark. */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(SyntheticParams params = {});

    std::string name() const override { return "Synthetic"; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;
    /** The random streams hit shared words without locking by design. */
    bool dataRaceFree() const override { return false; }

  private:
    static SimTask body(cpu::Processor &proc, SyntheticWorkload &w,
                        unsigned pid, unsigned n_procs);

    SyntheticParams cfg;
    Addr sharedBase = 0;
    std::vector<Addr> privateBase;
    Addr counterAddr = 0;  ///< lock-protected shared counter
    cpu::LockVar lock{};
    cpu::BarrierObj barrier{};
    std::vector<cpu::BarrierCtx> barrierCtx;
    std::uint64_t expectedCounter = 0;
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_SYNTHETIC_HH
