file(REMOVE_RECURSE
  "CMakeFiles/test_loadown.dir/test_loadown.cc.o"
  "CMakeFiles/test_loadown.dir/test_loadown.cc.o.d"
  "test_loadown"
  "test_loadown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
