/**
 * @file
 * Relax: iterative nine-point stencil relaxation over a square grid
 * (paper section 3.3; original is a 514 x 514 matrix of doubles).
 *
 * Each iteration has two phases separated by barriers: relax every
 * interior point of the main grid into a temporary grid, then copy the
 * temporary back. With row-block partitioning the only reference that
 * misses in steady state is the south-east neighbour (i+1, j+1), once per
 * line; this is what makes Relax nearly insensitive to relaxed
 * consistency (the missing value is needed almost immediately) and what
 * the paper's hand-scheduling experiment (Figure 9) manipulates.
 */

#ifndef MCSIM_WORKLOADS_RELAX_HH
#define MCSIM_WORKLOADS_RELAX_HH

#include <vector>

#include "cpu/sync.hh"
#include "workloads/costs.hh"
#include "workloads/workload.hh"

namespace mcsim::workloads
{

/** Load-scheduling variants for the stencil inner loop (paper fig. 9). */
enum class RelaxSchedule
{
    Default,    ///< compiler order: loads at the top, miss mid-sequence
    OptimalSC,  ///< missing load issued last; others summed during miss
    OptimalWO,  ///< missing load issued first; its use last
    BadSC,      ///< missing load first and used first (blocks the rest)
    BadWO,      ///< missing load last and used first (no overlap at all)
};

const char *relaxScheduleName(RelaxSchedule s);

/** Relax configuration. */
struct RelaxParams
{
    /** Interior grid dimension (paper: 512; scaled default: 192). */
    unsigned interior = 192;
    /** Relaxation iterations (each = relax phase + copy phase). */
    unsigned iterations = 3;
    RelaxSchedule schedule = RelaxSchedule::Default;
    std::uint64_t seed = 777;
    /** Barrier implementation between phases. */
    cpu::BarrierKind barrierKind = cpu::BarrierKind::Dissemination;
};

/** Nine-point stencil benchmark. */
class RelaxWorkload : public Workload
{
  public:
    explicit RelaxWorkload(RelaxParams params = {});

    std::string name() const override { return "Relax"; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;

  private:
    static SimTask body(cpu::Processor &proc, RelaxWorkload &w,
                        unsigned pid, unsigned n_procs);

    unsigned dim() const { return cfg.interior + 2; }

    Addr
    mainAddr(unsigned i, unsigned j) const
    {
        return mainBase + (static_cast<Addr>(i) * dim() + j) * 8;
    }

    Addr
    tempAddr(unsigned i, unsigned j) const
    {
        return tempBase + (static_cast<Addr>(i) * dim() + j) * 8;
    }

    RelaxParams cfg;
    OpCosts costs;
    Addr mainBase = 0;
    Addr tempBase = 0;
    cpu::BarrierObj barrier{};
    std::vector<cpu::BarrierCtx> barrierCtx;
    std::vector<double> expected;
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_RELAX_HH
