/**
 * @file
 * Reproduces paper Tables 3-6: the absolute (kilocycles) and relative
 * (%%) benefit of WO1 over SC1 for each benchmark, at load/branch delays
 * of two and four cycles, across cache and line sizes. The paper's
 * conclusion: the two-cycle results "are consistent with those obtained
 * with a four cycle delay and do not bring any further insight".
 *
 * Usage: bench_tables3_6 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("tables3_6", args);

    std::printf("Tables 3-6 reproduction: WO1 benefit over SC1 at 2- and "
                "4-cycle delays%s\n",
                isFull(args) ? " (paper-size)" : " (scaled)");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s: absolute (kcycles) / relative (%%)\n",
                    name.c_str());
        std::printf("%-6s %-7s | %16s | %16s | %16s\n", "cache", "delay",
                    "8B lines", "16B lines", "64B lines");
        for (int big = 0; big < 2; ++big) {
            for (unsigned delay : {2u, 4u}) {
                std::printf("%-6s %-7u |", big ? "large" : "small",
                            delay);
                for (unsigned line : lineSizes) {
                    const auto &sc1 = res.metrics(
                        exp::paperPoint(name, core::Model::SC1, args.scale,
                                        big, line, 16, delay));
                    const auto &wo1 = res.metrics(
                        exp::paperPoint(name, core::Model::WO1, args.scale,
                                        big, line, 16, delay));
                    std::printf(" %8.0f /%5.1f%% |",
                                core::absoluteGainKCycles(sc1, wo1),
                                core::percentGain(sc1, wo1));
                }
                std::printf("\n");
            }
        }
    }
    return 0;
}
