/**
 * @file
 * Fault-injection subsystem tests: per-injector FaultPlan units, backoff
 * bounds, config validation, the forward-progress watchdog (unit and
 * converting a genuinely wedged machine into a structured failure),
 * single-fault recovery through the MSHR retry path, and the
 * fault-transparency property over the quick grid.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/machine.hh"
#include "exp/chaos.hh"
#include "exp/grid.hh"
#include "fault/fault.hh"
#include "fault/fault_config.hh"
#include "fault/watchdog.hh"
#include "sim/task.hh"

using namespace mcsim;

namespace
{

/** An enabled plan with every rate zero (hardened protocol, no faults). */
fault::FaultConfig
enabledConfig()
{
    fault::FaultConfig fc;
    fc.enable = true;
    fc.seed = 42;
    return fc;
}

} // namespace

TEST(FaultConfig, ValidateRejectsBadSettings)
{
    fault::FaultConfig fc = enabledConfig();
    fc.dropRate = 1.5;
    EXPECT_THROW(fc.validate(), FatalError);

    fc = enabledConfig();
    fc.replyLossRate = -0.1;
    EXPECT_THROW(fc.validate(), FatalError);

    fc = enabledConfig();
    fc.dupRate = 0.5;
    fc.delayMaxCycles = 0;
    EXPECT_THROW(fc.validate(), FatalError);

    fc = enabledConfig();
    fc.blackoutPeriod = 100;
    fc.blackoutMaxCycles = 100;  // outage as long as its period
    EXPECT_THROW(fc.validate(), FatalError);

    // Lossy plan with neither retries nor a watchdog would hang.
    fc = enabledConfig();
    fc.replyLossRate = 0.5;
    fc.retryTimeoutCycles = 0;
    fc.watchdogCycles = 0;
    EXPECT_THROW(fc.validate(), FatalError);

    EXPECT_NO_THROW(enabledConfig().validate());
}

TEST(FaultConfig, PresetsValidateAndOffIsDisabled)
{
    for (const std::string &name : fault::faultPresetNames()) {
        const fault::FaultConfig fc = fault::faultPreset(name);
        EXPECT_NO_THROW(fc.validate()) << name;
        EXPECT_EQ(fc.enabled(), name != "off") << name;
    }
    EXPECT_THROW(fault::faultPreset("cataclysmic"), FatalError);
}

TEST(FaultPlan, DropInjectorHonorsBudgetAndDroppability)
{
    fault::FaultConfig fc = enabledConfig();
    fc.dropRate = 1.0;
    fc.budget = 1;
    fault::FaultPlan plan(fc);

    // Non-droppable kinds are never dropped, even at rate 1.
    EXPECT_FALSE(plan.onNetMessage(true, false).drop);
    EXPECT_EQ(plan.stats().drops, 0u);

    EXPECT_TRUE(plan.onNetMessage(true, true).drop);
    EXPECT_EQ(plan.stats().drops, 1u);

    // Budget spent: perfect hardware from here on.
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(plan.onNetMessage(true, true).drop);
    EXPECT_EQ(plan.stats().total(), 1u);
}

TEST(FaultPlan, DuplicateInjectorDelaysTheCopy)
{
    fault::FaultConfig fc = enabledConfig();
    fc.dupRate = 1.0;
    fc.delayMaxCycles = 16;
    fc.budget = 1;
    fault::FaultPlan plan(fc);

    const fault::FaultAction act = plan.onNetMessage(false, true);
    EXPECT_TRUE(act.duplicate);
    EXPECT_FALSE(act.drop);
    EXPECT_GE(act.duplicateDelay, 1u);
    EXPECT_LE(act.duplicateDelay, 16u);
    EXPECT_EQ(plan.stats().duplicates, 1u);
    EXPECT_FALSE(plan.onNetMessage(false, true).duplicate);
}

TEST(FaultPlan, DelayInjectorBoundsAndAppliesToAllKinds)
{
    fault::FaultConfig fc = enabledConfig();
    fc.delayRate = 1.0;
    fc.delayMaxCycles = 8;
    fault::FaultPlan plan(fc);

    for (int i = 0; i < 100; ++i) {
        // Delay-eligible even when not droppable (e.g. Invalidate).
        const fault::FaultAction act = plan.onNetMessage(true, false);
        EXPECT_GE(act.extraDelay, 1u);
        EXPECT_LE(act.extraDelay, 8u);
        EXPECT_FALSE(act.drop);
        EXPECT_FALSE(act.duplicate);
    }
    EXPECT_EQ(plan.stats().delays, 100u);
}

TEST(FaultPlan, ReplyLossInjectorHonorsBudget)
{
    fault::FaultConfig fc = enabledConfig();
    fc.replyLossRate = 1.0;
    fc.budget = 2;
    fault::FaultPlan plan(fc);

    EXPECT_TRUE(plan.loseReply(0));
    EXPECT_TRUE(plan.loseReply(1));
    EXPECT_FALSE(plan.loseReply(0));
    EXPECT_EQ(plan.stats().replyLosses, 2u);
}

TEST(FaultPlan, ModuleStallBounds)
{
    fault::FaultConfig fc = enabledConfig();
    fc.moduleStallRate = 1.0;
    fc.moduleStallMaxCycles = 12;
    fault::FaultPlan plan(fc);

    for (int i = 0; i < 100; ++i) {
        const Tick stall = plan.stallCycles(i % 4);
        EXPECT_GE(stall, 1u);
        EXPECT_LE(stall, 12u);
    }
    EXPECT_EQ(plan.stats().moduleStalls, 100u);
}

TEST(FaultPlan, BlackoutIsOneContiguousOutagePerWindow)
{
    fault::FaultConfig fc = enabledConfig();
    fc.blackoutPeriod = 2000;
    fc.blackoutMaxCycles = 100;
    fault::FaultPlan plan(fc);

    // Scan several windows tick by tick: inside a window the outage must
    // be one contiguous range no longer than the cap, every deferral must
    // point at the same outage end, and the deferral target must lie
    // within the window.
    for (Tick window = 0; window < 8; ++window) {
        const Tick base = window * fc.blackoutPeriod;
        Tick outage_ticks = 0;
        Tick outage_end = 0;
        bool in_outage = false;
        bool outage_over = false;
        for (Tick t = base; t < base + fc.blackoutPeriod; ++t) {
            const Tick until = plan.blackoutUntil(0, t);
            if (until == 0) {
                if (in_outage) {
                    in_outage = false;
                    outage_over = true;
                }
                continue;
            }
            EXPECT_FALSE(outage_over) << "outage not contiguous";
            in_outage = true;
            outage_ticks += 1;
            EXPECT_GT(until, t);
            if (outage_end == 0)
                outage_end = until;
            EXPECT_EQ(until, outage_end) << "deferral target moved";
            EXPECT_LE(until, base + fc.blackoutPeriod);
        }
        EXPECT_LE(outage_ticks, Tick(fc.blackoutMaxCycles));
    }
    EXPECT_GT(plan.stats().blackoutDeferrals, 0u);
}

TEST(FaultPlan, BackoffIsBoundedExponentialWithJitter)
{
    fault::FaultConfig fc = enabledConfig();
    fc.backoffBaseCycles = 64;
    fc.backoffMaxCycles = 4096;
    fc.backoffJitterCycles = 32;
    fault::FaultPlan plan(fc);

    for (unsigned attempt = 1; attempt <= 20; ++attempt) {
        const Tick floor = std::min<Tick>(
            Tick(fc.backoffBaseCycles) << (attempt - 1),
            fc.backoffMaxCycles);
        for (ProcId proc = 0; proc < 4; ++proc) {
            const Tick b = plan.backoffCycles(proc, attempt);
            EXPECT_GE(b, floor) << "attempt " << attempt;
            EXPECT_LE(b, floor + fc.backoffJitterCycles)
                << "attempt " << attempt;
        }
    }

    // No jitter configured: the schedule is exactly the capped powers.
    fc.backoffJitterCycles = 0;
    fault::FaultPlan exact(fc);
    EXPECT_EQ(exact.backoffCycles(0, 1), 64u);
    EXPECT_EQ(exact.backoffCycles(0, 2), 128u);
    EXPECT_EQ(exact.backoffCycles(0, 7), 4096u);
    EXPECT_EQ(exact.backoffCycles(0, 40), 4096u);  // shift saturates
}

TEST(Watchdog, UnitTripAndReset)
{
    fault::ForwardProgressWatchdog wd(100);
    EXPECT_FALSE(wd.poll(0, 0));
    EXPECT_FALSE(wd.poll(50, 10));    // progress
    EXPECT_FALSE(wd.poll(149, 10));   // 99 stalled cycles
    EXPECT_TRUE(wd.poll(150, 10));    // 100: trip
    EXPECT_FALSE(wd.poll(200, 11));   // progress resets it
    EXPECT_TRUE(wd.poll(300, 11));

    fault::ForwardProgressWatchdog off(0);
    EXPECT_FALSE(off.poll(1'000'000, 0));
}

namespace
{

core::MachineConfig
smallFaultyConfig()
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    cfg.fault = fault::faultPreset("off");
    cfg.fault.enable = true;
    cfg.fault.seed = 7;
    return cfg;
}

} // namespace

TEST(FaultMachine, SingleLostReplyRecoversThroughRetry)
{
    core::MachineConfig cfg = smallFaultyConfig();
    cfg.fault.replyLossRate = 1.0;
    cfg.fault.budget = 1;  // exactly one lost reply, then perfect
    cfg.fault.retryTimeoutCycles = 100;
    core::Machine machine(cfg);
    machine.memory().ensure(4096);
    machine.memory().writeU64(64, 0xdead);

    machine.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        const std::uint64_t v = co_await p.loadUse(64);
        co_await p.store(128, v + 1);
    }(machine.proc(0)));
    machine.run();

    EXPECT_EQ(machine.memory().readU64(128), 0xdeadu + 1);
    EXPECT_EQ(machine.faultPlan()->stats().replyLosses, 1u);
    EXPECT_GE(machine.cache(0).stats().retries, 1u);
}

TEST(FaultMachine, WatchdogConvertsWedgeIntoStructuredFailure)
{
    // Every data reply is lost forever: the retry storm keeps the event
    // queue busy (so the deadlock detector never sees it empty) while no
    // instruction retires -- exactly the livelock the watchdog exists
    // for.
    core::MachineConfig cfg = smallFaultyConfig();
    cfg.fault.replyLossRate = 1.0;
    cfg.fault.retryTimeoutCycles = 100;
    cfg.fault.backoffBaseCycles = 16;
    cfg.fault.backoffMaxCycles = 64;
    cfg.fault.backoffJitterCycles = 4;
    cfg.fault.watchdogCycles = 30'000;
    core::Machine machine(cfg);
    machine.memory().ensure(4096);

    machine.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        (void)co_await p.loadUse(64);
    }(machine.proc(0)));

    try {
        machine.run();
        FAIL() << "wedged machine completed";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("diagnostic snapshot"), std::string::npos)
            << what;
        // The snapshot names the stuck MSHR and its retry count.
        EXPECT_NE(what.find("mshr"), std::string::npos) << what;
    }
}

TEST(FaultTransparency, QuickGridUnderStandardFaults)
{
    // The tentpole property: for every paper model, a standard fault
    // plan may change when everything happens but not what the program
    // computes -- runs complete, the invariant and axiomatic checkers
    // stay clean, and final memory is byte-identical to the fault-free
    // baseline. (SC1/SC2/WO1/WO2/RC; the blocking variants are covered
    // by the CI chaos sweep over the full quick grid.)
    const exp::Grid quick = exp::namedGrid("quick", exp::Scale::Quick);
    exp::Grid grid{"quick-chaos", {}};
    for (const exp::SweepPoint &point : quick.points) {
        switch (point.model) {
          case core::Model::SC1:
          case core::Model::SC2:
          case core::Model::WO1:
          case core::Model::WO2:
          case core::Model::RC:
            grid.points.push_back(point);
            break;
          default:
            break;
        }
    }
    ASSERT_FALSE(grid.points.empty());

    exp::ChaosOptions opts;
    opts.preset = "standard";
    opts.progress = false;
    const exp::ChaosReport report = exp::runChaos(grid, opts);
    for (const exp::ChaosPointResult &r : report.points)
        EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_GT(report.totalInjected(), 0u);
    EXPECT_GT(report.totalRetries(), 0u);
    EXPECT_TRUE(report.ok()) << report.summary();
}
