/**
 * @file
 * Coherence auditor: cross-checks directory entries against actual cache
 * line states after protocol transitions.
 *
 * The full-map protocol has transient states (recalls in flight,
 * deferred invalidations, silently dropped clean lines), so only
 * invariants that hold at *every* instant are audited -- each one was
 * derived against the transient analysis in DESIGN.md:
 *
 *  A. At most one cache holds a line Modified.
 *  B. A Modified copy excludes any Shared copy of the same line.
 *  C. If cache p holds a line Modified, the directory records the line
 *     Exclusive with owner p.
 *  D. If the directory records a line Exclusive with owner p, no other
 *     cache holds a valid (S or M) copy of it.
 *  E. A valid copy in any cache implies the directory does not record
 *     the line Uncached.
 *
 * Presence-bit exactness is deliberately NOT audited: stale presence
 * bits are legal in both directions (clean lines are dropped silently;
 * bits are granted before the fill settles).
 */

#ifndef MCSIM_CHECK_COHERENCE_AUDITOR_HH
#define MCSIM_CHECK_COHERENCE_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mcsim::mem
{
class Cache;
class MemoryModule;
} // namespace mcsim::mem

namespace mcsim::check
{

/** Snapshot-based directory/cache agreement checker. */
class CoherenceAuditor
{
  public:
    CoherenceAuditor(unsigned num_procs, unsigned num_modules,
                     unsigned line_bytes);

    /** Wire the components to snapshot (owned by the Machine). */
    void attach(std::vector<const mem::Cache *> caches,
                std::vector<const mem::MemoryModule *> modules);

    /**
     * Audit invariants A-E for one line.
     * @return a violation description, or "" when the line is clean.
     */
    std::string auditLine(Addr line_addr);

    /**
     * Sweep every line known to any directory slice or cache.
     * @return the first violation found, or "".
     */
    std::string auditAll();

    std::uint64_t auditsRun() const { return numAudits; }

  private:
    unsigned numProcs;
    unsigned numModules;
    unsigned lineBytes;
    std::vector<const mem::Cache *> cachePtrs;
    std::vector<const mem::MemoryModule *> modulePtrs;
    std::uint64_t numAudits = 0;
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_COHERENCE_AUDITOR_HH
