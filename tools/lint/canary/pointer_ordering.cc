// Canary fixture for mcsim-lint's no-pointer-ordering check: ordered
// containers keyed on pointers and relational comparisons between
// unrelated pointers, all of which order behavior by allocator layout.
// NOT compiled into any target.

#include <map>
#include <memory>
#include <set>

struct Waiter
{
    int priority = 0;
};

// violation: std::map keyed on a pointer
std::map<Waiter *, int> waiterRank;

// violation: std::set of pointers
std::set<const Waiter *> parked;

bool
lowerAddress(const Waiter &a, const Waiter &b)
{
    return &a < &b;  // violation: relational compare of addresses
}

bool
smartPointerOrder(const std::unique_ptr<Waiter> &a,
                  const std::unique_ptr<Waiter> &b)
{
    return a.get() < b.get();  // violation: .get() address ordering
}
