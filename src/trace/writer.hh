/**
 * @file
 * Trace emission: a byte sink abstraction (memory buffer or file) and
 * the block-framing TraceWriter shared by capture and the synthetic
 * generators, so every producer emits the identical format.
 */

#ifndef MCSIM_TRACE_WRITER_HH
#define MCSIM_TRACE_WRITER_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace mcsim::trace
{

/**
 * Destination of trace bytes. `patch` rewrites already-written bytes
 * (the writer back-fills the header's record count at finish).
 */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;
    virtual void write(const void *data, std::size_t size) = 0;
    virtual void patch(std::uint64_t offset, const void *data,
                       std::size_t size) = 0;
};

/** Accumulate the trace in memory (generators, tests). */
class MemorySink : public ByteSink
{
  public:
    void write(const void *data, std::size_t size) override;
    void patch(std::uint64_t offset, const void *data,
               std::size_t size) override;

    const std::vector<std::uint8_t> &bytes() const { return buffer; }
    std::vector<std::uint8_t> take() { return std::move(buffer); }

  private:
    std::vector<std::uint8_t> buffer;
};

/** Stream the trace to a file; fatal() on any I/O failure. */
class FileSink : public ByteSink
{
  public:
    explicit FileSink(const std::string &path);
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void write(const void *data, std::size_t size) override;
    void patch(std::uint64_t offset, const void *data,
               std::size_t size) override;

    /** Flush and close; fatal() if the OS reports a write error. */
    void close();

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t cursor = 0;
};

/**
 * Emit a trace: header up front, then per-processor record blocks.
 * Records are buffered per processor and flushed as a CRC-framed block
 * when a processor's run reaches blockRecordLimit (and at finish), so
 * block order in the file is a pure function of the append sequence --
 * a deterministic producer yields a byte-identical file.
 */
class TraceWriter
{
  public:
    /** @p header.totalRecords is ignored; the writer counts. */
    TraceWriter(const TraceHeader &header, ByteSink &sink);

    /** Append the next record of @p proc (program order per proc). */
    void append(unsigned proc, const Record &rec);

    /** Flush all pending blocks and patch the final header. */
    void finish();

    std::uint64_t recordCount() const { return total; }

  private:
    void flushProc(unsigned proc);

    TraceHeader header;
    ByteSink &sink;
    std::vector<std::vector<Record>> pending;
    std::uint64_t total = 0;
    bool finished = false;
};

} // namespace mcsim::trace

#endif // MCSIM_TRACE_WRITER_HH
