/**
 * @file
 * Journal merge: fold N shard journals into the canonical results
 * document (DESIGN.md section 15).
 *
 * Byte-identity contract: the merged JSON (and CSV) for a plan is
 * byte-for-byte the document a single-process sweep_runner run over the
 * same grid emits, for ANY shard count and ANY worker thread count.
 * This works because journal frames store the canonical per-point JSON
 * (exp::jobToJson / exp::chaosPointToJson dumps), the canonical writer
 * is round-trip stable (parse then dump reproduces the bytes), and the
 * merge orders points strictly by grid-global index -- completion order
 * never leaks into the output.
 *
 * The merge refuses partial inputs loudly: a missing journal, a plan
 * mismatch, a torn header, or an uncovered point is fatal with the
 * first missing point named, never a silently shorter document.
 */

#ifndef MCSIM_SVC_MERGE_HH
#define MCSIM_SVC_MERGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "svc/shard.hh"

namespace mcsim::svc
{

/** The merged canonical outputs of one completed plan. */
struct MergeResult
{
    /** "mcsim-sweep-v1" or "mcsim-chaos-v1", exactly as sweep_runner
     *  would have written it (newline appended by the caller). */
    exp::Json document;
    /** Flat CSV, sweep mode only (exp::csvHeader + one row per job). */
    std::string csv;

    std::size_t totalJobs = 0;
    std::size_t failedJobs = 0;

    /** Chaos mode only: the rebuilt report's verdict and summary. @{ */
    bool chaosOk = false;
    std::string chaosSummary;
    /** @} */
};

/**
 * Merge the journals of @p plan, one path per shard in shard order
 * (journal_paths.size() == plan.shardCount). fatal() on any missing,
 * foreign, corrupt, or incomplete journal.
 */
MergeResult mergeJournals(const ShardPlan &plan,
                          const std::vector<std::string> &journal_paths);

} // namespace mcsim::svc

#endif // MCSIM_SVC_MERGE_HH
