/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The standard library engines are implementation-defined across platforms;
 * workload data generation (Qsort input, synthetic reference streams) must be
 * bit-identical everywhere for the experiments to be reproducible, so we
 * carry our own small generator.
 */

#ifndef MCSIM_SIM_RANDOM_HH
#define MCSIM_SIM_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace mcsim
{

/**
 * FNV-1a over a byte string. Used to derive run seeds from canonical
 * configuration-point identifiers (src/exp/): the seed of a sweep job is
 * a pure function of its configuration, never of wall clock or thread
 * scheduling, so every job is reproducible in isolation.
 */
constexpr std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** One SplitMix64 step: derive independent sub-seeds from one seed. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        __extension__ typedef unsigned __int128 u128;
        return static_cast<std::uint64_t>(
            (static_cast<u128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace mcsim

#endif // MCSIM_SIM_RANDOM_HH
