/**
 * @file
 * mc_runner: exhaustive protocol verification of the simulated machines
 * via the src/mc/ state-space explorer (DESIGN.md section 12).
 *
 * Without --replay, every selected (model, litmus) pair is explored
 * through all reachable interleavings of the simulator's
 * nondeterministic choice points and checked against the invariant
 * checkers, the axiomatic ordering rules, and the litmus outcome sets.
 * A violation is minimized and printed as a replayable choice vector
 * plus a message timeline. With --replay VEC, the single schedule VEC
 * encodes is re-executed and its verdict printed -- the way a
 * counterexample from CI is reproduced locally.
 *
 * Usage:
 *   mc_runner [--model NAME|all] [--litmus NAME|all] [--max-depth N]
 *             [--dpor on|off] [--max-schedules N] [--seed N]
 *             [--replay VEC] [--weaken] [--stats]
 *
 * Exit status: 0 all selected jobs verified (or the replayed schedule
 * is clean), 1 when any violation is found, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/consistency.hh"
#include "mc/explorer.hh"
#include "mc/schedule.hh"
#include "sim/logging.hh"

#include "../common/cli.hh"

using namespace mcsim;

namespace
{

struct Options
{
    std::string model = "all";
    std::string litmus = "all";
    mc::McOptions mc;
    bool replay = false;
    std::vector<unsigned> replayVec;
    bool stats = false;
};

void
usage(const char *argv0)
{
    std::string models;
    for (core::Model model : core::allModels)
        models += std::string(models.empty() ? "" : " ") +
                  core::modelName(model);
    std::string tests;
    for (const axiom::LitmusTest &t : axiom::litmusSuite())
        tests += (tests.empty() ? "" : ", ") + t.name;
    std::fprintf(
        stderr,
        "usage: %s [--model NAME|all] [--litmus NAME|all] [--max-depth N]\n"
        "          [--dpor on|off] [--max-schedules N] [--seed N]\n"
        "          [--replay VEC] [--weaken] [--stats]\n"
        "  --model          %s, or all (default all)\n"
        "  --litmus         %s,\n"
        "                   or all (default all)\n"
        "  --max-depth      branch horizon in choice points (default "
        "100000)\n"
        "  --dpor           sleep-set partial-order reduction (default "
        "on)\n"
        "  --max-schedules  schedule budget per (model, litmus) pair\n"
        "                   (default 200000)\n"
        "  --seed           workload execution-padding seed (default 1)\n"
        "  --replay         re-execute one schedule: a dotted choice\n"
        "                   vector like 2.0.1 (\"-\" = all-zeros); needs\n"
        "                   a single --model and --litmus\n"
        "  --weaken         disable the processors' sync-ordering\n"
        "                   hardware (the verifier must then find a\n"
        "                   counterexample)\n"
        "  --stats          print per-pair search statistics\n",
        argv0, models.c_str(), tests.c_str());
}

[[noreturn]] void
argError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "mc_runner: %s\n", message.c_str());
    usage(argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                argError(argv[0], arg + " expects a value");
            return argv[++i];
        };
        if (arg == "--model") {
            opt.model = next();
        } else if (arg == "--litmus") {
            opt.litmus = next();
        } else if (arg == "--max-depth") {
            if (!tools::parseUnsigned(next(), opt.mc.maxDepth) ||
                opt.mc.maxDepth == 0)
                argError(argv[0], "--max-depth expects a positive integer");
        } else if (arg == "--dpor") {
            const std::string v = next();
            if (v == "on")
                opt.mc.dpor = true;
            else if (v == "off")
                opt.mc.dpor = false;
            else
                argError(argv[0], "--dpor expects on or off, got '" + v +
                                      "'");
        } else if (arg == "--max-schedules") {
            if (!tools::parseU64(next(), opt.mc.maxSchedules) ||
                opt.mc.maxSchedules == 0)
                argError(argv[0],
                         "--max-schedules expects a positive integer");
        } else if (arg == "--seed") {
            if (!tools::parseU64(next(), opt.mc.seed))
                argError(argv[0], "--seed expects an integer");
        } else if (arg == "--replay") {
            opt.replay = true;
            const std::string v = next();
            if (!mc::parseVector(v, opt.replayVec))
                argError(argv[0], "--replay expects a dotted choice "
                                  "vector like 2.0.1, got '" +
                                      v + "'");
        } else if (arg == "--weaken") {
            opt.mc.weaken = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            argError(argv[0], "unknown argument: " + arg);
        }
    }
    return opt;
}

/** Fail fast on bad names, before any machine is built. */
void
validateOptions(const char *argv0, const Options &opt)
{
    if (opt.model != "all") {
        bool known = false;
        for (core::Model model : core::allModels)
            known = known || opt.model == core::modelName(model);
        if (!known)
            argError(argv0, "unknown model '" + opt.model + "'");
    }
    if (opt.litmus != "all" && mc::findLitmus(opt.litmus) == nullptr)
        argError(argv0, "unknown litmus test '" + opt.litmus + "'");
    if (opt.replay && (opt.model == "all" || opt.litmus == "all"))
        argError(argv0,
                 "--replay reruns one schedule: give a single --model "
                 "and --litmus");
}

int
replayOne(const Options &opt)
{
    mc::McOptions job = opt.mc;
    job.model = core::modelFromName(opt.model);
    job.litmus = opt.litmus;

    mc::ReplayScheduler sched(opt.replayVec);
    const mc::RunOutcome out = mc::runUnder(job, sched);
    std::printf("replay %s / %s vector %s: %s\n", opt.model.c_str(),
                opt.litmus.c_str(),
                mc::formatVector(opt.replayVec).c_str(),
                out.violated ? "VIOLATION" : "clean");
    if (sched.divergences() > 0)
        std::printf("  %llu vector entr%s out of range (recorded on a "
                    "different config?)\n",
                    static_cast<unsigned long long>(sched.divergences()),
                    sched.divergences() == 1 ? "y" : "ies");
    if (out.violated)
        std::printf("  %s: %s\n", out.kind.c_str(), out.message.c_str());
    std::printf("message timeline:\n%s",
                mc::renderTimeline(sched.timeline()).c_str());
    return out.violated ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    validateOptions(argv[0], opt);

    if (opt.replay)
        return replayOne(opt);

    unsigned pairs = 0;
    unsigned violated = 0;
    unsigned incomplete = 0;
    for (core::Model model : core::allModels) {
        if (opt.model != "all" && opt.model != core::modelName(model))
            continue;
        for (const axiom::LitmusTest &test : axiom::litmusSuite()) {
            if (opt.litmus != "all" && opt.litmus != test.name)
                continue;
            pairs += 1;

            mc::McOptions job = opt.mc;
            job.model = model;
            job.litmus = test.name;
            const mc::McResult res = mc::explore(job);

            const char *verdict =
                res.violation ? "VIOLATION"
                : res.complete ? "verified"
                                : "incomplete";
            violated += res.violation ? 1 : 0;
            incomplete += !res.violation && !res.complete ? 1 : 0;
            std::printf("%-8s %-9s %-10s %llu schedule(s)\n",
                        core::modelName(model), test.name.c_str(),
                        verdict,
                        static_cast<unsigned long long>(
                            res.stats.schedulesRun));
            if (opt.stats) {
                std::printf(
                    "    choice points %llu, branch points %llu, "
                    "pruned %llu, max depth %llu%s%s\n",
                    static_cast<unsigned long long>(
                        res.stats.choicePoints),
                    static_cast<unsigned long long>(
                        res.stats.branchPoints),
                    static_cast<unsigned long long>(
                        res.stats.sleepPruned),
                    static_cast<unsigned long long>(
                        res.stats.maxDepthSeen),
                    res.stats.budgetExhausted ? ", budget exhausted" : "",
                    res.stats.depthClipped ? ", depth clipped" : "");
            }
            if (res.violation)
                std::printf("%s", res.violation->report.c_str());
        }
    }

    if (pairs == 0) {
        std::fprintf(stderr, "mc_runner: nothing matched the selection\n");
        return 2;
    }
    std::printf("mc_runner: %u/%u pair(s) verified%s\n",
                pairs - violated - incomplete, pairs,
                incomplete ? " (some incomplete: raise --max-schedules)"
                           : "");
    return violated == 0 ? 0 : 1;
}
