#include "check/coherence_auditor.hh"

#include <unordered_set>
#include <utility>

#include "mem/cache.hh"
#include "mem/memory_module.hh"
#include "sim/logging.hh"

namespace mcsim::check
{

CoherenceAuditor::CoherenceAuditor(unsigned num_procs, unsigned num_modules,
                                   unsigned line_bytes)
    : numProcs(num_procs), numModules(num_modules), lineBytes(line_bytes)
{
}

void
CoherenceAuditor::attach(std::vector<const mem::Cache *> caches,
                         std::vector<const mem::MemoryModule *> modules)
{
    cachePtrs = std::move(caches);
    modulePtrs = std::move(modules);
    MCSIM_ASSERT(cachePtrs.size() == numProcs &&
                     modulePtrs.size() == numModules,
                 "coherence auditor attached to wrong component counts");
}

std::string
CoherenceAuditor::auditLine(Addr line_addr)
{
    numAudits += 1;

    const unsigned mod =
        static_cast<unsigned>((line_addr / lineBytes) % numModules);
    const auto dir_state = modulePtrs[mod]->dirState(line_addr);
    const ProcId dir_owner = modulePtrs[mod]->ownerOf(line_addr);

    unsigned modified_count = 0;
    unsigned shared_count = 0;
    ProcId modified_holder = 0;

    for (unsigned p = 0; p < numProcs; ++p) {
        const auto state = cachePtrs[p]->lineState(line_addr);
        if (state == mem::Cache::LineState::Modified) {
            modified_count += 1;
            modified_holder = static_cast<ProcId>(p);
        } else if (state == mem::Cache::LineState::Shared) {
            shared_count += 1;
        }

        // D: an Exclusive directory entry excludes valid copies anywhere
        // but the registered owner. (The owner itself may transiently
        // hold S after a RecallShared downgrade, before the directory's
        // transaction finishes.)
        if (dir_state == mem::MemoryModule::DirState::Exclusive &&
            static_cast<ProcId>(p) != dir_owner &&
            (state == mem::Cache::LineState::Modified ||
             state == mem::Cache::LineState::Shared)) {
            return strprintf("line 0x%llx: directory Exclusive owner p%u "
                             "but cache p%u holds a %s copy",
                             static_cast<unsigned long long>(line_addr),
                             dir_owner, p,
                             state == mem::Cache::LineState::Modified
                                 ? "Modified"
                                 : "Shared");
        }
    }

    // A: single writer.
    if (modified_count > 1) {
        return strprintf("line 0x%llx: %u caches hold it Modified",
                         static_cast<unsigned long long>(line_addr),
                         modified_count);
    }
    // B: no readers beside a writer.
    if (modified_count == 1 && shared_count > 0) {
        return strprintf("line 0x%llx: Modified in p%u while %u Shared "
                         "copies exist",
                         static_cast<unsigned long long>(line_addr),
                         modified_holder, shared_count);
    }
    // C: a writer must be the registered exclusive owner.
    if (modified_count == 1 &&
        (dir_state != mem::MemoryModule::DirState::Exclusive ||
         dir_owner != modified_holder)) {
        return strprintf("line 0x%llx: Modified in p%u but directory "
                         "state %d owner p%u (directory drift)",
                         static_cast<unsigned long long>(line_addr),
                         modified_holder, static_cast<int>(dir_state),
                         dir_owner);
    }
    // E: valid copies imply a directory record.
    if ((modified_count + shared_count) > 0 &&
        dir_state == mem::MemoryModule::DirState::Uncached) {
        return strprintf("line 0x%llx: cached in %u processors but the "
                         "directory records it Uncached",
                         static_cast<unsigned long long>(line_addr),
                         modified_count + shared_count);
    }
    return {};
}

std::string
CoherenceAuditor::auditAll()
{
    std::unordered_set<Addr> seen;
    for (const auto *module : modulePtrs) {
        for (const auto &[line, state] : module->knownLines()) {
            (void)state;
            if (!seen.insert(line).second)
                continue;
            std::string r = auditLine(line);
            if (!r.empty())
                return r;
        }
    }
    for (const auto *cache : cachePtrs) {
        for (const auto &[line, state] : cache->validLines()) {
            (void)state;
            if (!seen.insert(line).second)
                continue;
            std::string r = auditLine(line);
            if (!r.empty())
                return r;
        }
    }
    return {};
}

} // namespace mcsim::check
