#include "exp/chaos.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "axiom/axiom_checker.hh"
#include "core/machine.hh"
#include "fault/fault_config.hh"
#include "sim/logging.hh"

namespace mcsim::exp
{

namespace
{

/** Final-memory fingerprint of a completed, verified run of @p point. */
std::uint64_t
runToFingerprint(const SweepPoint &point, Tick &cycles_out)
{
    core::MachineConfig cfg = point.machineConfig();
    auto workload = point.makeWorkload();
    if (!workload->dataRaceFree())
        cfg.check.races = false;

    core::Machine machine(cfg);
    workload->setup(machine);
    cycles_out = machine.run();
    workload->verify(machine);
    return workload->resultFingerprint(machine);
}

} // namespace

ChaosPointResult
runChaosPoint(const SweepPoint &point, const std::string &preset)
{
    SweepPoint faulted = point;
    faulted.faultPreset = preset;
    // Transparency is only worth asserting under full scrutiny: the
    // invariant suite runs in Fatal mode (a violation aborts the run into
    // the error string) and the axiomatic checker replays the trace.
    faulted.runChecks = true;
    faulted.recordTrace = true;

    ChaosPointResult result;
    result.id = faulted.id();
    try {
        // Fault-free baseline: the ground truth the faulted twin must
        // reproduce byte for byte.
        SweepPoint baseline = point;
        baseline.faultPreset.clear();
        const std::uint64_t want =
            runToFingerprint(baseline, result.baselineCycles);

        core::MachineConfig cfg = faulted.machineConfig();
        auto workload = faulted.makeWorkload();
        if (!workload->dataRaceFree())
            cfg.check.races = false;

        core::Machine machine(cfg);
        workload->setup(machine);
        result.faultedCycles = machine.run();
        workload->verify(machine);

        if (const fault::FaultPlan *plan = machine.faultPlan())
            result.faultsInjected = plan->stats().total();
        for (unsigned p = 0; p < machine.numProcs(); ++p) {
            const auto &cs = machine.cache(p).stats();
            result.retries += cs.retries;
            result.nacks += cs.nacksReceived;
            result.staleMessages += cs.staleReplies;
        }
        for (unsigned i = 0; i < cfg.numModules; ++i)
            result.staleMessages +=
                machine.module(i).stats().staleMessages;

        if (axiom::TraceRecorder *rec = machine.traceRecorder()) {
            const axiom::Trace &trace = rec->finish();
            const axiom::AxiomResult verdict =
                axiom::checkTrace(trace, cfg.modelParams());
            if (!verdict.ok) {
                result.error =
                    "axiomatic trace rejected under faults: " +
                    verdict.message;
                return result;
            }
        }

        const std::uint64_t got = workload->resultFingerprint(machine);
        if (got != want) {
            result.error = strprintf(
                "final memory diverged: baseline fingerprint %016llx, "
                "faulted %016llx (%llu faults injected, %llu retries)",
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(result.faultsInjected),
                static_cast<unsigned long long>(result.retries));
            return result;
        }
        result.ok = true;
    } catch (const std::exception &err) {
        result.error = err.what();
    }
    return result;
}

ChaosReport
runChaos(const Grid &grid, const ChaosOptions &options)
{
    // Reject unknown presets before spending any simulation time.
    (void)fault::faultPreset(options.preset);

    ChaosReport report;
    report.grid = grid.name;
    report.preset = options.preset;
    const std::size_t total = grid.points.size();
    report.points.resize(total);
    if (total == 0)
        return report;

    unsigned threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex reportMutex;
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            report.points[i] =
                runChaosPoint(grid.points[i], options.preset);
            const std::size_t done = completed.fetch_add(1) + 1;
            if (!options.progress)
                continue;
            const ChaosPointResult &r = report.points[i];
            std::lock_guard<std::mutex> lock(reportMutex);
            std::fprintf(
                stderr,
                "[%zu/%zu] %-52s %-6s %llu faults, %llu retries\n", done,
                total, r.id.c_str(), r.ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(r.faultsInjected),
                static_cast<unsigned long long>(r.retries));
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads, total));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return report;
}

bool
ChaosReport::ok() const
{
    for (const ChaosPointResult &r : points)
        if (!r.ok)
            return false;
    // A chaos sweep that never perturbed anything proves nothing; demand
    // evidence unless the operator explicitly asked for the off preset.
    if (preset != "off" && !points.empty() &&
        (totalInjected() == 0 || totalRetries() == 0))
        return false;
    return true;
}

std::size_t
ChaosReport::failures() const
{
    std::size_t n = 0;
    for (const ChaosPointResult &r : points)
        n += r.ok ? 0 : 1;
    return n;
}

std::uint64_t
ChaosReport::totalInjected() const
{
    std::uint64_t n = 0;
    for (const ChaosPointResult &r : points)
        n += r.faultsInjected;
    return n;
}

std::uint64_t
ChaosReport::totalRetries() const
{
    std::uint64_t n = 0;
    for (const ChaosPointResult &r : points)
        n += r.retries;
    return n;
}

std::string
ChaosReport::summary() const
{
    std::uint64_t nacks = 0;
    std::uint64_t stale = 0;
    for (const ChaosPointResult &r : points) {
        nacks += r.nacks;
        stale += r.staleMessages;
    }
    std::string out = strprintf(
        "chaos sweep: grid '%s', preset '%s': %zu point(s), %zu "
        "failure(s), %llu fault(s) injected, %llu retries, %llu NACKs, "
        "%llu stale messages\n",
        grid.c_str(), preset.c_str(), points.size(), failures(),
        static_cast<unsigned long long>(totalInjected()),
        static_cast<unsigned long long>(totalRetries()),
        static_cast<unsigned long long>(nacks),
        static_cast<unsigned long long>(stale));
    for (const ChaosPointResult &r : points)
        if (!r.ok)
            out += strprintf("  FAILED %s: %s\n", r.id.c_str(),
                             r.error.c_str());
    if (failures() == 0 && preset != "off" && !points.empty() &&
        (totalInjected() == 0 || totalRetries() == 0)) {
        out += "  FAILED: no faults landed (or no retries fired); the "
               "sweep exercised nothing\n";
    }
    return out;
}

Json
chaosPointToJson(const ChaosPointResult &result)
{
    Json job = Json::object();
    job["id"] = Json(result.id);
    job["status"] = Json(result.ok ? "ok" : "failed");
    if (!result.ok)
        job["error"] = Json(result.error);
    job["faultsInjected"] = Json(result.faultsInjected);
    job["retries"] = Json(result.retries);
    job["nacks"] = Json(result.nacks);
    job["staleMessages"] = Json(result.staleMessages);
    job["baselineCycles"] = Json(result.baselineCycles);
    job["faultedCycles"] = Json(result.faultedCycles);
    return job;
}

ChaosPointResult
chaosPointFromJson(const Json &doc)
{
    ChaosPointResult result;
    auto number = [&](const char *name) -> std::uint64_t {
        const Json *value = doc.find(name);
        if (value == nullptr || !value->isNumber())
            fatal("chaos record lacks numeric field '%s'", name);
        return static_cast<std::uint64_t>(value->asNumber());
    };
    const Json *id = doc.find("id");
    const Json *status = doc.find("status");
    if (id == nullptr || !id->isString() || status == nullptr ||
        !status->isString())
        fatal("chaos record lacks id/status");
    result.id = id->asString();
    result.ok = status->asString() == "ok";
    if (const Json *error = doc.find("error"))
        result.error = error->asString();
    result.faultsInjected = number("faultsInjected");
    result.retries = number("retries");
    result.nacks = number("nacks");
    result.staleMessages = number("staleMessages");
    result.baselineCycles = number("baselineCycles");
    result.faultedCycles = number("faultedCycles");
    return result;
}

Json
ChaosReport::toJson() const
{
    Json doc = Json::object();
    doc["schema"] = Json("mcsim-chaos-v1");
    doc["grid"] = Json(grid);
    doc["preset"] = Json(preset);
    doc["ok"] = Json(ok() ? 1.0 : 0.0);
    Json jobs = Json::array();
    for (const ChaosPointResult &r : points)
        jobs.push(chaosPointToJson(r));
    doc["points"] = std::move(jobs);
    return doc;
}

} // namespace mcsim::exp
