/**
 * @file
 * Text trace import: accept the classic cache-simulator trace syntax --
 * one memory transaction per line, `<proc> <r|w> <hex-addr>` (e.g.
 * "5 w 0xabcd") -- and emit a validated canonical .mct file.
 *
 * Mapping: `r` becomes a blocking LoadUse (the importing format has no
 * token notion, so every read consumes immediately), `w` a Store of the
 * line number (a deterministic, non-zero value). Accesses are 8 bytes
 * wide; an imported byte address is aligned down to the containing
 * 8-byte word, which preserves the touched cache line -- the only thing
 * the source format actually encodes. The processor count defaults to
 * the next power of two above the highest processor mentioned (the
 * Omega networks route by bit slices), overridable upward via
 * ImportParams::procs.
 *
 * Parsing is strict and total: any malformed line is fatal() with its
 * line number, and the import is rejected rather than silently skipped
 * -- a converted trace either round-trips exactly or does not exist.
 */

#ifndef MCSIM_TRACE_IMPORT_HH
#define MCSIM_TRACE_IMPORT_HH

#include <cstdint>
#include <string>

#include "trace/writer.hh"

namespace mcsim::trace
{

/** Import knobs. */
struct ImportParams
{
    /** Processor count; 0 = next power of two above the highest proc
     *  in the text. Must be a power of two and large enough when set. */
    unsigned procs = 0;
    /** Header seed field (documentation only; replay derives nothing
     *  from an imported trace's seed). */
    std::uint64_t seed = 0;
};

/** What an import produced. */
struct ImportSummary
{
    unsigned procs = 0;
    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Input lines skipped because they were empty or '#' comments. */
    std::uint64_t blankLines = 0;
};

/**
 * Parse the text trace in @p text and append the converted records to
 * @p sink as a canonical trace file. fatal() on any malformed line
 * (unknown operation, bad processor or address token, trailing junk) or
 * an empty trace; the message names the 1-based line number.
 */
ImportSummary importTextTrace(const std::string &text,
                              const ImportParams &params, ByteSink &sink);

/** File-to-file convenience: reads @p text_path, writes @p out_path. */
ImportSummary importTextTraceFile(const std::string &text_path,
                                  const std::string &out_path,
                                  const ImportParams &params);

} // namespace mcsim::trace

#endif // MCSIM_TRACE_IMPORT_HH
