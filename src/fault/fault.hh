/**
 * @file
 * Deterministic fault plan: the per-machine oracle every injection site
 * consults (DESIGN.md section 11).
 *
 * Three choke points ask it for decisions:
 *  - the Omega networks, per injected message (drop / duplicate / extra
 *    delay);
 *  - the memory modules, per DRAM reservation (transient stall), per
 *    arriving request (blackout deferral) and per outgoing data reply
 *    (reply loss);
 *  - the caches, per retry attempt (bounded exponential backoff with
 *    seed-derived jitter).
 *
 * Every answer is a pure function of (seed, site, decision counter), so
 * a run's fault schedule depends only on its configuration and its own
 * deterministic event order -- never on wall clock or sweep threading.
 */

#ifndef MCSIM_FAULT_FAULT_HH
#define MCSIM_FAULT_FAULT_HH

#include <cstdint>
#include <string>

#include "fault/fault_config.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcsim::fault
{

/**
 * The seed-derived per-site decision chain every fault plan is built
 * on: each call advances a global nonce and folds (seed, site, nonce)
 * through splitmix64, so a plan's answers are a pure function of its
 * seed and its own query order -- never of wall clock or scheduling.
 * Shared by the machine-level FaultPlan below and the process-level
 * plan in src/svc/chaos_svc.hh.
 */
class DecisionChain
{
  public:
    explicit DecisionChain(std::uint64_t seed) : seed_(seed) {}

    /** Next raw hash for decision site @p site. */
    std::uint64_t
    hash(std::uint64_t site)
    {
        return splitmix64(
            seed_ ^ splitmix64(site + 0x9e3779b97f4a7c15ull * ++nonce));
    }

    /** Next uniform double in [0,1) for decision site @p site. */
    double
    draw(std::uint64_t site)
    {
        return static_cast<double>(hash(site) >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t seed_;
    std::uint64_t nonce = 0; ///< global decision counter
};

/** Injection counters, exported under "fault." by Machine stats. */
struct FaultStats
{
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t replyLosses = 0;
    std::uint64_t moduleStalls = 0;
    std::uint64_t blackoutDeferrals = 0;

    std::uint64_t
    total() const
    {
        return drops + duplicates + delays + replyLosses + moduleStalls +
               blackoutDeferrals;
    }

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "drops", static_cast<double>(drops));
        out.add(prefix + "duplicates", static_cast<double>(duplicates));
        out.add(prefix + "delays", static_cast<double>(delays));
        out.add(prefix + "reply_losses", static_cast<double>(replyLosses));
        out.add(prefix + "module_stalls",
                static_cast<double>(moduleStalls));
        out.add(prefix + "blackout_deferrals",
                static_cast<double>(blackoutDeferrals));
        out.add(prefix + "injected", static_cast<double>(total()));
    }
};

/** What to do with one network message about to be injected. */
struct FaultAction
{
    bool drop = false;
    bool duplicate = false;
    Tick extraDelay = 0;      ///< 0 = deliver on time
    Tick duplicateDelay = 0;  ///< extra delay of the duplicate copy
};

/**
 * The per-machine fault oracle. Owned by Machine; caches, modules and
 * the network filter lambdas hold a plain pointer (nullptr = perfect
 * hardware, legacy protocol paths).
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    const FaultConfig &config() const { return cfg; }
    const FaultStats &stats() const { return st; }

    /**
     * Switch-port decision for one message entering a network.
     *
     * @param request_net true for the request (proc->mem) direction
     * @param droppable the kind has a retry path (the Get, DataReply and
     *        Nack kinds); only such messages may be dropped or duplicated
     */
    FaultAction onNetMessage(bool request_net, bool droppable);

    /** Directory-side reply loss for one DataReply leaving @p module. */
    bool loseReply(ModuleId module);

    /** Extra DRAM busy cycles for one reservation at @p module (0 = no
     *  stall injected). */
    Tick stallCycles(ModuleId module);

    /**
     * Blackout check for a request arriving at @p module at @p now.
     * @return the tick the outage ends (defer the request there), or 0
     *         when the module is up.
     */
    Tick blackoutUntil(ModuleId module, Tick now);

    /**
     * Backoff before retry attempt @p attempt (1-based) by @p proc:
     * min(base << (attempt-1), max) + seed-derived jitter in
     * [0, jitter]. Deterministic but attempt-varied, so colliding
     * retries decohere.
     */
    Tick backoffCycles(ProcId proc, unsigned attempt);

  private:
    /** Next uniform double in [0,1) for decision site @p site. */
    double draw(std::uint64_t site) { return chain.draw(site); }
    /** Next raw hash for decision site @p site. */
    std::uint64_t hash(std::uint64_t site) { return chain.hash(site); }
    /** True when the budget allows one more injection. */
    bool budgetLeft() const;

    FaultConfig cfg;
    FaultStats st;
    DecisionChain chain; ///< seed-derived per-site decision source
};

} // namespace mcsim::fault

#endif // MCSIM_FAULT_FAULT_HH
