/**
 * @file
 * Litmus-test engine tests: the classic suite runs clean across all
 * seven machine models and several seeds/configurations -- forbidden
 * outcomes are never observed at either the functional or the
 * hardware-visible level, and the axiomatic checker accepts every trace
 * a correct machine produces.
 */

#include <gtest/gtest.h>

#include "axiom/litmus.hh"
#include "core/consistency.hh"

using namespace mcsim;
using namespace mcsim::axiom;
using core::Model;

namespace
{

/** Run the whole suite on @p config for a few seeds; assert every run
 *  is accepted by the checker and inside the model's allowed set. */
void
expectSuiteClean(const core::MachineConfig &config, unsigned num_seeds,
                 const char *label)
{
    const core::ModelParams params = config.modelParams();
    for (const LitmusTest &test : litmusSuite()) {
        for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
            const LitmusRun run = runLitmus(test, config, seed);
            EXPECT_TRUE(run.axiom.ok)
                << label << " / " << test.name << " seed " << seed << "\n"
                << run.axiom.message;
            EXPECT_TRUE(test.allowed(params, run.hwReads))
                << label << " / " << test.name << " seed " << seed
                << ": forbidden hardware outcome ("
                << outcomeString(run.hwReads) << ")";
            EXPECT_TRUE(test.allowed(params, run.funcReads))
                << label << " / " << test.name << " seed " << seed
                << ": forbidden functional outcome ("
                << outcomeString(run.funcReads) << ")";
        }
    }
}

} // namespace

TEST(Litmus, SuiteCoversTheClassicShapes)
{
    const auto &suite = litmusSuite();
    ASSERT_EQ(suite.size(), 10u);
    std::vector<std::string> names;
    for (const LitmusTest &t : suite) {
        names.push_back(t.name);
        EXPECT_GE(t.threads.size(), 1u);
        EXPECT_LE(t.threads.size(), 4u);
        EXPECT_NE(t.allowed, nullptr);
    }
    const std::vector<std::string> expected = {
        "SB",  "SB+F",     "MP",   "MP+sync",   "LB",
        "WRC", "WRC+sync", "IRIW", "IRIW+sync", "CoRR"};
    EXPECT_EQ(names, expected);
}

TEST(Litmus, OutcomeStringFormats)
{
    EXPECT_EQ(outcomeString({}), "");
    EXPECT_EQ(outcomeString({1}), "1");
    EXPECT_EQ(outcomeString({1, 0, 2}), "1,0,2");
}

TEST(Litmus, ClassificationsMatchTheModels)
{
    const auto &suite = litmusSuite();
    const core::ModelParams sc = core::modelParams(Model::SC1);
    const core::ModelParams wo = core::modelParams(Model::WO1);
    core::ModelParams buffered = sc;
    buffered.scStoreBufferRelease = true;

    const LitmusTest &sb = suite[0];
    EXPECT_FALSE(sb.allowed(sc, {0, 0}));   // forbidden under SC
    EXPECT_TRUE(sb.allowed(wo, {0, 0}));    // weak reordering
    EXPECT_TRUE(sb.allowed(buffered, {0, 0}));
    EXPECT_TRUE(sb.allowed(sc, {1, 1}));

    const LitmusTest &sbf = suite[1];
    EXPECT_FALSE(sbf.allowed(sc, {0, 0}));
    EXPECT_TRUE(sbf.allowed(buffered, {0, 0}));  // fence is an SC no-op

    const LitmusTest &mp_sync = suite[3];
    EXPECT_FALSE(mp_sync.allowed(wo, {1, 0}));  // forbidden everywhere
    EXPECT_TRUE(mp_sync.allowed(wo, {1, 1}));

    const LitmusTest &corr = suite[9];
    EXPECT_FALSE(corr.allowed(wo, {1, 0}));  // coherence on every model
    EXPECT_TRUE(corr.allowed(wo, {0, 1}));
}

// The full suite on every model's canonical configuration. Forbidden
// outcomes must never be observed; every trace must be accepted.
TEST(Litmus, SuiteCleanOnAllModels)
{
    for (Model model : core::allModels)
        expectSuiteClean(litmusConfig(model), 5, core::modelName(model));
}

// The SC store-buffer ablation: plain stores hand off to the interface
// buffer and stop gating later accesses. SB's (0,0) becomes legal; the
// checker must accept those traces rather than flag the reordering.
TEST(Litmus, SuiteCleanWithScStoreBuffer)
{
    core::MachineConfig cfg = litmusConfig(Model::SC1);
    core::ModelParams params = core::modelParams(Model::SC1);
    params.scStoreBufferRelease = true;
    cfg.modelOverride = params;
    expectSuiteClean(cfg, 4, "SC1+buf");
}

// A different machine geometry: fewer modules, longer lines, slower
// memory -- more contention and different interleavings.
TEST(Litmus, SuiteCleanOnSmallGeometry)
{
    for (Model model : {Model::WO1, Model::RC, Model::SC2}) {
        core::MachineConfig cfg = litmusConfig(model);
        cfg.numModules = 2;
        cfg.lineBytes = 64;
        cfg.cacheBytes = 2048;
        cfg.memInitCycles = 20;
        expectSuiteClean(cfg, 3, core::modelName(model));
    }
}
