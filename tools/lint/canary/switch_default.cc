// Canary fixture for mcsim-lint's protocol-switch-exhaustiveness
// check: a switch over a closed protocol enum hiding unhandled kinds
// behind a default arm. Adding a Kind would compile silently -- which
// is exactly what the check exists to prevent. NOT compiled into any
// target.

enum class Kind
{
    Get,
    Put,
    Ack,
    Retry,
};

int
cost(Kind k)
{
    switch (k) {
      case Kind::Get:
        return 2;
      case Kind::Put:
        return 3;
      default:  // violation: default arm over a closed enum
        return 1;
    }
}
