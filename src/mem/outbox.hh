/**
 * @file
 * Unbounded overflow queue in front of a (bounded) network interface
 * buffer.
 *
 * Caches and memory modules generate protocol messages at rates that can
 * momentarily exceed the 4-entry interface buffer; the controller keeps
 * them in its own outbound queue and feeds the buffer as space frees. The
 * WO2 bypass rule is honoured here too: while messages are waiting in the
 * overflow queue, a bypass-eligible message (a load request) is inserted
 * ahead of the others, so the bypass semantics are independent of where a
 * message happens to be queued.
 */

#ifndef MCSIM_MEM_OUTBOX_HH
#define MCSIM_MEM_OUTBOX_HH

#include <deque>
#include <utility>

#include "mem/protocol.hh"
#include "net/iface_buffer.hh"

namespace mcsim::mem
{

/** Controller-side outbound message queue feeding an IfaceBuffer. */
class Outbox
{
  public:
    using Buffer = net::IfaceBuffer<CoherenceMsg>;

    /**
     * @param buffer the interface buffer to drain into
     * @param bypass_enabled honour bypassEligible ordering in the overflow
     *        queue (matches the buffer's own configuration under WO2)
     */
    explicit Outbox(Buffer &buffer, bool bypass_enabled = false)
        : buf(buffer), bypassEnabled(bypass_enabled)
    {}

    Outbox(const Outbox &) = delete;
    Outbox &operator=(const Outbox &) = delete;

    /** Queue @p msg for injection; delivery order is FIFO (plus bypass). */
    void
    send(NetMsg &&msg)
    {
        if (bypassEnabled && msg.bypassEligible && !overflow.empty())
            overflow.push_front(std::move(msg));
        else
            overflow.push_back(std::move(msg));
        drain();
    }

    /** Messages waiting in the overflow queue (not yet in the buffer). */
    std::size_t backlog() const { return overflow.size(); }

  private:
    void
    drain()
    {
        while (!overflow.empty()) {
            if (!buf.tryEnqueue(std::move(overflow.front()))) {
                if (!waitingForSpace) {
                    waitingForSpace = true;
                    buf.onSpace([this]() {
                        waitingForSpace = false;
                        drain();
                    });
                }
                return;
            }
            overflow.pop_front();
        }
    }

    Buffer &buf;
    bool bypassEnabled;
    bool waitingForSpace = false;
    std::deque<NetMsg> overflow;
};

} // namespace mcsim::mem

#endif // MCSIM_MEM_OUTBOX_HH
