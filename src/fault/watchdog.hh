/**
 * @file
 * Forward-progress watchdog (DESIGN.md section 11).
 *
 * Machine::run polls it after each event-queue chunk with the current
 * tick and the machine-wide retired-instruction count. If the count has
 * not moved for `thresholdCycles` simulated cycles the watchdog trips and
 * the machine converts the hang (deadlocked protocol, livelocked retry
 * storm) into a structured fatal() carrying a diagnostic snapshot,
 * instead of spinning to maxCycles.
 *
 * The watchdog is pure observation -- it schedules no events and touches
 * no component state -- so arming it changes no run by a single cycle.
 */

#ifndef MCSIM_FAULT_WATCHDOG_HH
#define MCSIM_FAULT_WATCHDOG_HH

#include <cstdint>

#include "sim/types.hh"

namespace mcsim::fault
{

/** Detects "no instruction retired machine-wide for K cycles". */
class ForwardProgressWatchdog
{
  public:
    /** @param threshold_cycles K; 0 disables the watchdog. */
    explicit ForwardProgressWatchdog(Tick threshold_cycles)
        : thresholdCycles(threshold_cycles)
    {}

    /**
     * Record an observation.
     * @param now current simulated tick
     * @param retired machine-wide retired-instruction count (monotone)
     * @return true when the watchdog trips: no progress for >= K cycles
     */
    bool
    poll(Tick now, std::uint64_t retired)
    {
        if (thresholdCycles == 0)
            return false;
        if (retired != lastRetired) {
            lastRetired = retired;
            lastProgressTick = now;
            return false;
        }
        return now - lastProgressTick >= thresholdCycles;
    }

    /** Cycles since the last observed retirement (diagnostics). */
    Tick
    stalledCycles(Tick now) const
    {
        return now - lastProgressTick;
    }

    Tick threshold() const { return thresholdCycles; }

  private:
    Tick thresholdCycles;
    Tick lastProgressTick = 0;
    std::uint64_t lastRetired = 0;
};

} // namespace mcsim::fault

#endif // MCSIM_FAULT_WATCHDOG_HH
