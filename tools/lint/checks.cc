#include "lint/checks.hh"

#include <algorithm>
#include <set>

namespace mcsim::lint
{

namespace
{

constexpr const char *kNoEntropy = "no-entropy";
constexpr const char *kUnordered = "no-unordered-iteration";
constexpr const char *kPtrOrder = "no-pointer-ordering";
constexpr const char *kSwitch = "protocol-switch-exhaustiveness";
constexpr const char *kChoiceSeam = "choice-seam";
constexpr const char *kAudit = "suppression-audit";

/** The suppression spelling the issue tracker standardized on for
 *  unordered walks; resolves to no-unordered-iteration. */
constexpr const char *kOrderInsensitive = "order-insensitive";

const std::vector<CheckInfo> infos = {
    {kNoEntropy,
     "ban wall-clock, PRNG-from-environment, and pointer-value entropy"},
    {kUnordered,
     "iteration over unordered containers needs an order-insensitive "
     "suppression with a reason"},
    {kPtrOrder,
     "ordered containers keyed on pointers / relational pointer compares "
     "depend on allocator layout"},
    {kSwitch,
     "switches over protocol enums must spell out every kind instead of "
     "a default arm"},
    {kChoiceSeam,
     "nondeterministic decisions must route through sim/choice.hh "
     "registered seam sites"},
    {kAudit,
     "every mcsim-lint suppression must name a real check and carry a "
     "non-empty reason"},
};

bool
pathHas(const std::string &path, std::string_view needle)
{
    return path.find(needle) != std::string::npos;
}

/** Timing/scheduling layers where ad-hoc entropy is banned outright. */
bool
inTimingLayer(const std::string &path)
{
    return pathHas(path, "src/cpu/") || pathHas(path, "src/mem/") ||
           pathHas(path, "src/net/") || pathHas(path, "src/sim/event_queue");
}

/**
 * The registered choice-seam sites: the seam definition itself, the
 * three component layers that expose their races through it, and the
 * model-checker schedulers that implement the interface. Adding a new
 * nondeterministic site means extending this list -- in a reviewed
 * diff, which is exactly the point.
 */
bool
inSeamAllowlist(const std::string &path)
{
    return pathHas(path, "src/sim/choice") ||
           pathHas(path, "src/net/omega_network.hh") ||
           pathHas(path, "src/mem/cache.cc") ||
           pathHas(path, "src/mem/memory_module.cc") ||
           pathHas(path, "src/mc/");
}

/** Index one past the `)` matching the `(` at @p open. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open, std::size_t n)
{
    int depth = 0;
    for (std::size_t i = open; i < n; ++i) {
        if (toks[i].is("("))
            ++depth;
        else if (toks[i].is(")") && --depth == 0)
            return i + 1;
    }
    return n;
}

/** Index one past the `>` matching the `<` at @p open (see symbols.cc). */
std::size_t
matchAngle(const std::vector<Token> &toks, std::size_t open, std::size_t n)
{
    int depth = 0;
    for (std::size_t i = open; i < n; ++i) {
        if (toks[i].is("<")) {
            ++depth;
        } else if (toks[i].is(">")) {
            if (--depth == 0)
                return i + 1;
        } else if (toks[i].is(";") || toks[i].is("{")) {
            return n;
        }
    }
    return n;
}

struct Raw
{
    unsigned line;
    const char *check;
    std::string message;
};

void
checkNoEntropy(const LexedFile &f, std::vector<Raw> &out)
{
    static const std::set<std::string_view> bannedTypes = {
        "system_clock",   "steady_clock", "high_resolution_clock",
        "random_device",  "mt19937",      "mt19937_64",
        "default_random_engine", "minstd_rand", "minstd_rand0",
        "ranlux24",       "ranlux48",     "knuth_b",
    };
    static const std::set<std::string_view> bannedCalls = {
        "time",      "clock",        "rand",         "srand",
        "random",    "drand48",      "lrand48",      "getpid",
        "gettimeofday", "clock_gettime", "localtime", "gmtime",
    };
    const auto &t = f.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].pp || t[i].kind != Tok::Ident)
            continue;
        if (bannedTypes.count(t[i].text)) {
            out.push_back({t[i].line, kNoEntropy,
                           "'" + std::string(t[i].text) +
                               "' injects wall-clock/environment entropy; "
                               "runs must be pure functions of config and "
                               "seed (sim/random.hh)"});
            continue;
        }
        if (bannedCalls.count(t[i].text) && i + 1 < n && t[i + 1].is("(") &&
            (i == 0 || (!t[i - 1].is(".") && !t[i - 1].is("->")))) {
            out.push_back({t[i].line, kNoEntropy,
                           "call to '" + std::string(t[i].text) +
                               "()' reads the environment; derive values "
                               "from the run seed instead"});
            continue;
        }
        if (t[i].is("reinterpret_cast") && i + 1 < n && t[i + 1].is("<")) {
            const std::size_t end = matchAngle(t, i + 1, n);
            for (std::size_t k = i + 2; k + 1 < end; ++k) {
                if (t[k].isIdent("uintptr_t") || t[k].isIdent("intptr_t")) {
                    out.push_back(
                        {t[i].line, kNoEntropy,
                         "pointer-to-integer cast makes a value depend on "
                         "allocator layout; use a stable id"});
                    break;
                }
            }
        }
    }
}

void
checkUnorderedIteration(const LexedFile &f, const SymbolIndex &index,
                        std::vector<Raw> &out)
{
    const auto &t = f.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].pp || t[i].kind != Tok::Ident)
            continue;

        // Range-for over an unordered container.
        if (t[i].is("for") && i + 1 < n && t[i + 1].is("(")) {
            const std::size_t end = matchParen(t, i + 1, n);
            std::size_t colon = 0;
            bool classic = false;
            int depth = 0;
            for (std::size_t k = i + 1; k < end; ++k) {
                if (t[k].is("("))
                    ++depth;
                else if (t[k].is(")"))
                    --depth;
                else if (depth == 1 && t[k].is(";"))
                    classic = true;
                else if (depth == 1 && t[k].is(":") && colon == 0)
                    colon = k;
            }
            if (classic || colon == 0 || end == n)
                continue;
            // Terminal name of the range expression (`m`, `st.m`,
            // `obj->fn()` -> fn): scan back over one trailing call.
            std::size_t k = end - 2;  // before the closing ')'
            if (t[k].is(")")) {
                int d = 0;
                while (k > colon) {
                    if (t[k].is(")"))
                        ++d;
                    else if (t[k].is("(") && --d == 0)
                        break;
                    --k;
                }
                if (k > colon)
                    --k;
            }
            if (k > colon && t[k].kind == Tok::Ident &&
                index.unorderedNames.count(std::string(t[k].text))) {
                out.push_back(
                    {t[i].line, kUnordered,
                     "iteration over unordered container '" +
                         std::string(t[k].text) +
                         "' -- sort/drain deterministically or annotate "
                         "`// mcsim-lint: order-insensitive(<reason>)`"});
            }
            continue;
        }

        // Iterator walk / algorithm: unordered.begin() or ->cbegin().
        if (index.unorderedNames.count(std::string(t[i].text)) &&
            i + 3 < n && (t[i + 1].is(".") || t[i + 1].is("->")) &&
            (t[i + 2].isIdent("begin") || t[i + 2].isIdent("cbegin")) &&
            t[i + 3].is("(")) {
            out.push_back(
                {t[i].line, kUnordered,
                 "iterator walk over unordered container '" +
                     std::string(t[i].text) +
                     "' -- sort/drain deterministically or annotate "
                     "`// mcsim-lint: order-insensitive(<reason>)`"});
        }
    }
}

/** True when tokens at [i..] spell `& ident` with an expression start
 *  before the `&` (address-of, not bitwise-and). */
bool
isAddressOf(const std::vector<Token> &t, std::size_t i, std::size_t n)
{
    if (i + 1 >= n || !t[i].is("&") || t[i + 1].kind != Tok::Ident)
        return false;
    if (i == 0)
        return true;
    const Token &p = t[i - 1];
    return p.is("(") || p.is(",") || p.is("=") || p.is("&&") || p.is("||") ||
           p.is(";") || p.is("{") || p.is("return") ||
           p.is("<") || p.is(">") || p.is("<=") || p.is(">=");
}

/** True when tokens ending at @p i (inclusive) spell `.get()`/`->get()`. */
bool
endsInGetCall(const std::vector<Token> &t, std::size_t i)
{
    return i >= 3 && t[i].is(")") && t[i - 1].is("(") &&
           t[i - 2].isIdent("get") &&
           (t[i - 3].is(".") || t[i - 3].is("->"));
}

void
checkPointerOrdering(const LexedFile &f, std::vector<Raw> &out)
{
    const auto &t = f.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].pp)
            continue;

        // std::map/std::set keyed on a pointer type.
        if (t[i].kind == Tok::Ident &&
            (t[i].is("map") || t[i].is("set") || t[i].is("multimap") ||
             t[i].is("multiset")) &&
            i > 0 && t[i - 1].is("::") && i + 1 < n && t[i + 1].is("<")) {
            const std::size_t end = matchAngle(t, i + 1, n);
            int depth = 0;
            for (std::size_t k = i + 1; k < end; ++k) {
                if (t[k].is("<"))
                    ++depth;
                else if (t[k].is(">"))
                    --depth;
                else if (depth == 1 && t[k].is(","))
                    break;  // past the key type
                else if (depth == 1 && t[k].is("*")) {
                    out.push_back(
                        {t[i].line, kPtrOrder,
                         "ordered container keyed on a pointer orders "
                         "behavior by allocator layout; key on a stable "
                         "id instead"});
                    break;
                }
            }
            continue;
        }

        // Relational comparison of addresses: `&a < &b` or
        // `x.get() < y.get()`.
        if (t[i].kind == Tok::Punct &&
            (t[i].is("<") || t[i].is(">") || t[i].is("<=") ||
             t[i].is(">="))) {
            const bool leftAddr = i >= 2 && t[i - 1].kind == Tok::Ident &&
                                  isAddressOf(t, i - 2, n);
            const bool leftGet = i >= 1 && endsInGetCall(t, i - 1);
            const bool rightAddr = isAddressOf(t, i + 1, n);
            const bool rightGet =
                i + 3 < n && t[i + 1].kind == Tok::Ident &&
                (t[i + 2].is(".") || t[i + 2].is("->")) &&
                t[i + 3].isIdent("get");
            if ((leftAddr || leftGet) && (rightAddr || rightGet)) {
                out.push_back(
                    {t[i].line, kPtrOrder,
                     "relational comparison between unrelated pointers "
                     "depends on allocator layout"});
            }
        }
    }
}

void
checkSwitchExhaustiveness(const LexedFile &f, const SymbolIndex &index,
                          std::vector<Raw> &out)
{
    const auto &t = f.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].pp || !t[i].isIdent("switch") || i + 1 >= n ||
            !t[i + 1].is("("))
            continue;
        std::size_t body = matchParen(t, i + 1, n);
        if (body >= n || !t[body].is("{"))
            continue;

        std::string enumName;
        unsigned defaultLine = 0;
        int depth = 0;
        for (std::size_t k = body; k < n; ++k) {
            if (t[k].is("{")) {
                ++depth;
                continue;
            }
            if (t[k].is("}")) {
                if (--depth == 0)
                    break;
                continue;
            }
            if (depth != 1)
                continue;  // nested switches report themselves
            if (t[k].isIdent("default") && k + 1 < n && t[k + 1].is(":")) {
                if (defaultLine == 0)
                    defaultLine = t[k].line;
                continue;
            }
            if (t[k].isIdent("case")) {
                // Qualified labels only: Enum::Value. Scan to the `:`.
                for (std::size_t j = k + 1; j + 2 < n && !t[j].is(":");
                     ++j) {
                    if (t[j].kind == Tok::Ident && t[j + 1].is("::") &&
                        t[j + 2].kind == Tok::Ident &&
                        index.enums.count(std::string(t[j].text))) {
                        enumName = std::string(t[j].text);
                        break;
                    }
                }
            }
        }
        if (!enumName.empty() && defaultLine != 0) {
            out.push_back(
                {defaultLine, kSwitch,
                 "switch over closed enum '" + enumName +
                     "' hides unhandled kinds behind a default arm; "
                     "spell out every enumerator (unreachableMessage() "
                     "for impossible ones) so -Wswitch flags additions"});
        }
    }
}

void
checkChoiceSeam(const LexedFile &f, std::vector<Raw> &out)
{
    const auto &t = f.tokens;
    const std::size_t n = t.size();
    const bool timing = inTimingLayer(f.path);
    const bool allowed = inSeamAllowlist(f.path);
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].pp || t[i].kind != Tok::Ident)
            continue;
        if (timing && !allowed &&
            (t[i].is("Rng") || t[i].is("splitmix64") || t[i].is("fnv1a"))) {
            out.push_back(
                {t[i].line, kChoiceSeam,
                 "'" + std::string(t[i].text) +
                     "' in a timing/scheduling layer; decisions here must "
                     "come from config, the FaultPlan, or a "
                     "sim/choice.hh seam site"});
            continue;
        }
        if (!allowed && t[i].is("choose") && i > 0 &&
            (t[i - 1].is(".") || t[i - 1].is("->")) && i + 1 < n &&
            t[i + 1].is("(")) {
            out.push_back(
                {t[i].line, kChoiceSeam,
                 "ChoiceScheduler::choose() outside the registered seam "
                 "sites; add the site to sim/choice.hh's contract and "
                 "the tools/lint seam registry"});
        }
    }
}

} // namespace

const std::vector<CheckInfo> &
checkInfos()
{
    return infos;
}

bool
isKnownCheck(const std::string &name)
{
    if (name == kOrderInsensitive)
        return true;
    return std::any_of(infos.begin(), infos.end(),
                       [&](const CheckInfo &c) { return name == c.name; });
}

void
runChecks(const LexedFile &file, const SymbolIndex &index,
          const std::string &only, std::vector<Finding> &findings)
{
    std::vector<Raw> raw;
    checkNoEntropy(file, raw);
    checkUnorderedIteration(file, index, raw);
    checkPointerOrdering(file, raw);
    checkSwitchExhaustiveness(file, index, raw);
    checkChoiceSeam(file, raw);

    auto suppressed = [&](const Raw &r) {
        for (unsigned line : {r.line, r.line - 1}) {
            auto it = file.suppressions.find(line);
            if (it == file.suppressions.end())
                continue;
            for (const Suppression &s : it->second) {
                const bool names =
                    s.check == r.check ||
                    (s.check == kOrderInsensitive && r.check == kUnordered);
                if (names && !s.reason.empty())
                    return true;
            }
        }
        return false;
    };

    for (const Raw &r : raw) {
        if (!only.empty() && only != r.check)
            continue;
        if (suppressed(r))
            continue;
        findings.push_back({file.path, r.line, r.check, r.message});
    }

    // Suppression audit: annotations must parse, name a real check, and
    // carry a written reason -- the suppression table doubles as the
    // reviewed registry of every place the rules are waived.
    if (!only.empty() && only != kAudit)
        return;
    for (const auto &[line, entries] : file.suppressions) {
        for (const Suppression &s : entries) {
            if (s.malformed) {
                findings.push_back(
                    {file.path, line, kAudit,
                     "unparsable mcsim-lint annotation; expected "
                     "`mcsim-lint: <check>(<reason>)`"});
            } else if (!isKnownCheck(s.check)) {
                findings.push_back(
                    {file.path, line, kAudit,
                     "suppression names unknown check '" + s.check + "'"});
            } else if (s.reason.empty()) {
                findings.push_back(
                    {file.path, line, kAudit,
                     "suppression of '" + s.check +
                         "' carries no reason; write down why the site "
                         "is exempt"});
            }
        }
    }
}

} // namespace mcsim::lint
