#include "obs/perfetto.hh"

#include <map>
#include <utility>

#include "sim/logging.hh"

namespace mcsim::obs
{

namespace
{

/** Thread (component instance) display name within its track. */
std::string
threadName(Track track, std::uint32_t id)
{
    switch (track) {
      case Track::Proc:
        return strprintf("proc %u", id);
      case Track::Cache:
        return strprintf("cache %u", id);
      case Track::ReqSwitch:
      case Track::RespSwitch:
        // Switch-port ids are packed as (stage << 8) | output link.
        return strprintf("stage %u port %u", id >> 8, id & 0xffu);
      case Track::Module:
        return strprintf("module %u", id);
    }
    return strprintf("id %u", id);
}

} // namespace

std::string
perfettoJson(const Tracer &tracer)
{
    // One Perfetto process per track; pid 0 is reserved.
    auto pidOf = [](Track track) {
        return static_cast<unsigned>(track) + 1;
    };

    // Collect the (track, id) instances present so each gets exactly one
    // thread_name metadata record. std::map keeps the output canonical.
    std::map<std::pair<unsigned, std::uint32_t>, Track> threads;
    tracer.forEach([&](const TraceEvent &e) {
        threads.emplace(std::make_pair(pidOf(e.track), e.id), e.track);
    });

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &record) {
        if (!first)
            out += ',';
        first = false;
        out += '\n';
        out += record;
    };

    for (unsigned t = 0; t < numTracks; ++t) {
        const Track track = static_cast<Track>(t);
        emit(strprintf("{\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                       "\"name\":\"process_name\","
                       "\"args\":{\"name\":\"%s\"}}",
                       pidOf(track), trackName(track)));
    }
    for (const auto &[key, track] : threads) {
        emit(strprintf("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                       "\"name\":\"thread_name\","
                       "\"args\":{\"name\":\"%s\"}}",
                       key.first, key.second,
                       threadName(track, key.second).c_str()));
    }

    tracer.forEach([&](const TraceEvent &e) {
        std::string record = strprintf(
            "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
            "\"dur\":%llu,\"name\":\"%s\"",
            pidOf(e.track), e.id,
            static_cast<unsigned long long>(e.begin),
            static_cast<unsigned long long>(e.dur), spanKindName(e.kind));
        if (e.arg != 0) {
            record += strprintf(",\"args\":{\"addr\":\"0x%llx\"}",
                                static_cast<unsigned long long>(e.arg));
        }
        record += '}';
        emit(record);
    });

    out += "\n]}\n";
    return out;
}

} // namespace mcsim::obs
