# Empty compiler generated dependencies file for test_outbox.
# This may be replaced when dependencies are built.
