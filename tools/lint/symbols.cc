#include "lint/symbols.hh"

namespace mcsim::lint
{

namespace
{

/**
 * Starting at an opening `<` (index of the `<` token), return the index
 * one past the matching `>`. `>` is always lexed as a single token, so
 * nested template argument lists count cleanly. Returns @p n when
 * unbalanced (the harvest then abandons the declaration).
 */
std::size_t
skipTemplateArgs(const std::vector<Token> &toks, std::size_t at,
                 std::size_t n)
{
    int depth = 0;
    for (std::size_t i = at; i < n; ++i) {
        if (toks[i].is("<")) {
            ++depth;
        } else if (toks[i].is(">")) {
            if (--depth == 0)
                return i + 1;
        } else if (toks[i].is(";") || toks[i].is("{")) {
            return n;  // not a template argument list after all
        }
    }
    return n;
}

} // namespace

void
harvestSymbols(const LexedFile &file, SymbolIndex &index)
{
    const auto &toks = file.tokens;
    const std::size_t n = toks.size();

    for (std::size_t i = 0; i < n; ++i) {
        if (toks[i].pp || toks[i].kind != Tok::Ident)
            continue;

        // enum [class|struct] Name [: underlying] { A, B = x, C };
        if (toks[i].is("enum")) {
            std::size_t j = i + 1;
            if (j < n && (toks[j].is("class") || toks[j].is("struct")))
                ++j;
            if (j >= n || toks[j].kind != Tok::Ident)
                continue;
            const std::string name(toks[j].text);
            ++j;
            while (j < n && !toks[j].is("{") && !toks[j].is(";"))
                ++j;
            if (j >= n || toks[j].is(";"))
                continue;  // forward declaration / opaque enum
            unsigned count = 0;
            int depth = 0;
            bool atEnumeratorStart = true;
            for (; j < n; ++j) {
                if (toks[j].is("{")) {
                    ++depth;
                    atEnumeratorStart = true;
                    continue;
                }
                if (toks[j].is("}")) {
                    if (--depth == 0)
                        break;
                    continue;
                }
                if (depth != 1)
                    continue;
                if (toks[j].is(",")) {
                    atEnumeratorStart = true;
                    continue;
                }
                if (atEnumeratorStart && toks[j].kind == Tok::Ident)
                    ++count;
                atEnumeratorStart = false;
            }
            index.enums[name] = count;
            continue;
        }

        // using Alias = [std::]unordered_map<...>;
        if (toks[i].is("using") && i + 2 < n &&
            toks[i + 1].kind == Tok::Ident && toks[i + 2].is("=")) {
            for (std::size_t j = i + 3; j < n && !toks[j].is(";"); ++j) {
                if (toks[j].isIdent("unordered_map") ||
                    toks[j].isIdent("unordered_set") ||
                    toks[j].isIdent("unordered_multimap") ||
                    toks[j].isIdent("unordered_multiset")) {
                    index.unorderedTypes.insert(std::string(toks[i + 1].text));
                    break;
                }
            }
            continue;
        }

        // [std::]unordered_map<...> name   (variable, member, or function
        // returning one -- all of which make iteration order-sensitive),
        // or AliasType name for a harvested alias.
        const bool direct = toks[i].is("unordered_map") ||
                            toks[i].is("unordered_set") ||
                            toks[i].is("unordered_multimap") ||
                            toks[i].is("unordered_multiset");
        const bool viaAlias =
            index.unorderedTypes.count(std::string(toks[i].text)) > 0;
        if (!direct && !viaAlias)
            continue;

        std::size_t j = i + 1;
        if (direct) {
            if (j >= n || !toks[j].is("<"))
                continue;  // bare mention (e.g. in a comment-free doc)
            j = skipTemplateArgs(toks, j, n);
            if (j >= n)
                continue;
        }
        // Skip reference/pointer declarators and const.
        while (j < n &&
               (toks[j].is("&") || toks[j].is("*") || toks[j].is("const")))
            ++j;
        if (j < n && toks[j].kind == Tok::Ident)
            index.unorderedNames.insert(std::string(toks[j].text));
    }
}

} // namespace mcsim::lint
