/**
 * @file
 * Reproduces paper Figure 7: the blocking-loads study at the small
 * caches -- SC1, bWO1 and WO1 plotted as % gain over bSC1 (the
 * blocking-load sequentially consistent baseline).
 *
 * What the paper found: SC1 ~ bSC1 (non-blocking loads alone buy the SC
 * system little); for Relax nearly all of WO1's gain needs non-blocking
 * loads (bWO1 ~ bSC1), i.e. Relax's hidden latency is read latency; for
 * Psim bWO1 already captures 75-85%% of WO1's gain (mostly write
 * latency).
 *
 * Usage: bench_fig7 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig7", args);
    const std::vector<core::Model> models = {
        core::Model::SC1, core::Model::BWO1, core::Model::WO1};

    std::printf("Figure 7 reproduction: %% gain over bSC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(args, false), isFull(args) ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (unsigned line : lineSizes) {
                const auto &base = res.metrics(exp::paperPoint(
                    name, core::Model::BSC1, args.scale, false, line));
                const auto &m = res.metrics(
                    exp::paperPoint(name, model, args.scale, false, line));
                std::printf(" %9.1f%%", core::percentGain(base, m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
