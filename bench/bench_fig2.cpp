/**
 * @file
 * Reproduces paper Figure 2: SC1 run-time by line size for each
 * benchmark, at both cache sizes. The paper's shapes to look for:
 * Gauss improves steeply with line size at the small cache but is flat
 * at the large one; Qsort's 64B point is the slowest; Relax and Psim
 * improve modestly, with Psim's 64B run-time rising from network load.
 *
 * Usage: bench_fig2 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig2", args);

    std::printf("Figure 2 reproduction: SC1 run-time (Mcycles) by line "
                "size%s\n",
                isFull(args) ? " (paper-size)" : " (scaled)");
    printHeaderRule();

    for (int big = 0; big < 2; ++big) {
        std::printf("\n%s caches\n", cacheLabel(args, big));
        std::printf("%-7s %10s %10s %10s\n", "Program", "8B", "16B",
                    "64B");
        for (const auto &name : benchmarkNames) {
            std::printf("%-7s", name.c_str());
            for (unsigned line : lineSizes) {
                const auto &m = res.metrics(exp::paperPoint(
                    name, core::Model::SC1, args.scale, big, line));
                std::printf(" %10.3f",
                            static_cast<double>(m.cycles) / 1e6);
            }
            std::printf("\n");
        }
    }
    return 0;
}
