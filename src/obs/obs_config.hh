/**
 * @file
 * Observability configuration (src/obs/). The stall-cause attribution
 * and the latency histograms are always on -- they are a handful of
 * integer adds per event and feed the sweep/golden stats -- so only the
 * event tracer, whose ring costs memory and a store per span, is
 * configurable here.
 */

#ifndef MCSIM_OBS_OBS_CONFIG_HH
#define MCSIM_OBS_OBS_CONFIG_HH

#include <cstddef>

namespace mcsim::obs
{

/** Per-machine observability settings. */
struct ObsConfig
{
    /** Construct and wire the ring-buffer event tracer. */
    bool tracer = false;
    /** Initial armed state: a wired-but-disarmed tracer measures the
     *  off-path cost (bench_micro) and can be armed mid-run. */
    bool tracerArmed = true;
    /** Ring capacity in events; the oldest events are overwritten. */
    std::size_t tracerEvents = std::size_t(1) << 16;
};

} // namespace mcsim::obs

#endif // MCSIM_OBS_OBS_CONFIG_HH
