/**
 * @file
 * Cache-coherence protocol message definitions (full-map directory scheme,
 * after Censier & Feautrier 1978, as specified in paper section 3.1).
 *
 * Traffic directions:
 *  - processor -> memory (request network): GetShared, GetExclusive,
 *    Writeback, InvAck, RecallStale, FlushData
 *  - memory -> processor (response network): DataReplyShared,
 *    DataReplyExclusive, Invalidate, RecallShared, RecallExclusive, plus
 *    Nack and WbAck under the hardened protocol (src/fault/)
 *
 * Only timing flows through the protocol; functional data is maintained by
 * the processors against FunctionalMemory at instruction issue time (see
 * DESIGN.md, "Functional/timing split").
 */

#ifndef MCSIM_MEM_PROTOCOL_HH
#define MCSIM_MEM_PROTOCOL_HH

#include <cstdint>

#include "net/message.hh"
#include "sim/types.hh"

namespace mcsim::mem
{

/** Protocol message kinds. */
enum class MsgKind : std::uint8_t
{
    // processor -> memory
    GetShared,       ///< read miss: fetch line for read
    GetExclusive,    ///< write/RMW miss: fetch line with ownership
    Writeback,       ///< eviction of an exclusive line (carries data)
    InvAck,          ///< acknowledgment of an Invalidate
    RecallStale,     ///< recall target no longer holds the line
    FlushData,       ///< recall reply carrying the dirty line

    // memory -> processor
    DataReplyShared,     ///< line data, read permission
    DataReplyExclusive,  ///< line data, write permission (after invs/acks)
    Invalidate,          ///< directory asks a sharer to drop its copy
    RecallShared,        ///< directory asks the owner to flush, keep shared
    RecallExclusive,     ///< directory asks the owner to flush + invalidate

    // memory -> processor, hardened protocol only (src/fault/)
    Nack,                ///< directory refuses a Get*; retry after backoff
    WbAck,               ///< directory consumed a Writeback; limbo cleared
};

/** Human-readable kind name (diagnostics and tests). */
const char *msgKindName(MsgKind kind);

/** True for kinds that travel processor -> memory (request network). */
constexpr bool
isRequestKind(MsgKind kind)
{
    return kind == MsgKind::GetShared || kind == MsgKind::GetExclusive ||
           kind == MsgKind::Writeback || kind == MsgKind::InvAck ||
           kind == MsgKind::RecallStale || kind == MsgKind::FlushData;
}

/** True for kinds that carry a full cache line of data. */
constexpr bool
carriesLine(MsgKind kind)
{
    return kind == MsgKind::Writeback || kind == MsgKind::FlushData ||
           kind == MsgKind::DataReplyShared ||
           kind == MsgKind::DataReplyExclusive;
}

/** Protocol payload carried opaquely by the network layer. */
struct CoherenceMsg
{
    MsgKind kind{MsgKind::GetShared};
    /** Line-aligned address the message concerns. */
    Addr lineAddr = 0;
    /** Processor involved (requester for requests, target for replies). */
    ProcId proc = 0;
    /**
     * Per-line grant sequence number (directory DirEntry::seq). Replies
     * carry the seq of the grant; Invalidate/Recall carry the seq their
     * transaction's grant will get; Writeback/FlushData carry the seq of
     * the grant being surrendered. The directory maintains it
     * unconditionally, but only the hardened protocol (fault injection
     * on, src/fault/) uses it -- to recognize and discard stale or
     * duplicate messages that reordered past their revocation.
     */
    std::uint32_t seq = 0;
};

/** Message envelope type used by both machine networks. */
using NetMsg = net::Msg<CoherenceMsg>;

/**
 * Well-formedness lint for a protocol message about to be injected
 * (src/check/ hooks): the kind must match the network direction, the
 * address must be line-aligned, and the processor id must exist.
 *
 * @param msg the payload being sent
 * @param to_memory true when injected into the request network
 * @param num_procs processor count
 * @param line_bytes cache line size
 * @return nullptr when well-formed, else a static description
 */
const char *validateMessage(const CoherenceMsg &msg, bool to_memory,
                            unsigned num_procs, unsigned line_bytes);

/**
 * Terminate on a protocol message that reached a handler which, by
 * construction, can never receive it (wrong network direction, or a
 * kind the dispatch above it already consumed). Protocol switches list
 * every MsgKind explicitly and route the impossible ones here -- so
 * adding a message kind makes -Wswitch (and mcsim-lint's
 * protocol-switch-exhaustiveness check) force every handler to be
 * revisited instead of silently falling into a default arm.
 *
 * @param component handler description ("cache", "memory module")
 * @param id component instance (processor or module id)
 * @param kind the impossible message kind
 */
[[noreturn]] void unreachableMessage(const char *component, unsigned id,
                                     MsgKind kind);

/**
 * Network size in bytes of a protocol message: one flit of header/address,
 * plus the line data when present.
 */
constexpr std::uint32_t
messageBytes(MsgKind kind, std::uint32_t line_bytes)
{
    return net::flitBytes + (carriesLine(kind) ? line_bytes : 0);
}

} // namespace mcsim::mem

#endif // MCSIM_MEM_PROTOCOL_HH
