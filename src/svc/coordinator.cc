#include "svc/coordinator.hh"

#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace mcsim::svc
{

namespace
{

/** Relaunch delay ceiling. */
constexpr unsigned maxBackoffMs = 5000;

/**
 * Points currently journaled for a shard. Only called while the shard
 * has no live worker (before its first launch or after waitpid reaped
 * it), so the scan never races a writer.
 */
std::size_t
journaledPoints(const std::string &path)
{
    if (!journalExists(path))
        return 0;
    const JournalScan scan = scanJournal(path);
    return scan.headerTorn ? 0 : scan.frames.size();
}

/** fork + execv; fatal() if the coordinator itself cannot spawn. */
pid_t
spawnWorker(const std::vector<std::string> &argv)
{
    if (argv.empty())
        fatal("svc: worker argv is empty");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0)
        fatal("svc: fork failed");
    if (pid == 0) {
        execv(cargv[0], cargv.data());
        std::fprintf(stderr, "svc: cannot exec '%s'\n", cargv[0]);
        _exit(127);
    }
    return pid;
}

std::string
describeDeath(int wstatus)
{
    if (WIFSIGNALED(wstatus))
        return strprintf("killed by signal %d", WTERMSIG(wstatus));
    if (WIFEXITED(wstatus))
        return strprintf("exited with status %d", WEXITSTATUS(wstatus));
    return "vanished";
}

} // namespace

CoordinatorReport
runCoordinator(const ShardPlan &plan,
               const std::vector<std::string> &journal_paths,
               const WorkerArgv &worker_argv,
               const CoordinatorOptions &options)
{
    const std::uint32_t shards = plan.shardCount;
    if (journal_paths.size() != shards)
        fatal("svc: coordinator got %zu journal path(s) for %u shard(s)",
              journal_paths.size(), shards);
    unsigned workers = options.workers == 0
                           ? shards
                           : std::min<unsigned>(options.workers, shards);
    if (workers == 0)
        workers = 1;

    CoordinatorReport report;
    report.shards.resize(shards);

    /** Per-shard watchdog state. */
    struct Supervision
    {
        unsigned strikes = 0;  ///< consecutive no-progress deaths
        std::size_t last = 0;  ///< journaled points at last look
    };
    std::vector<Supervision> sup(shards);

    /** A scheduled (re)launch: which shard, after what delay. */
    struct Launch
    {
        std::uint32_t shard;
        unsigned delayMs;
    };
    std::deque<Launch> pending;
    for (std::uint32_t s = 0; s < shards; ++s) {
        ShardStatus &status = report.shards[s];
        status.shard = s;
        sup[s].last = journaledPoints(journal_paths[s]);
        status.journaledPoints = sup[s].last;
        if (sup[s].last == plan.shardPoints(s)) {
            // Resume found a finished journal: nothing to supervise.
            status.done = true;
            if (options.progress)
                std::fprintf(stderr,
                             "svc: shard %u/%u already complete\n", s,
                             shards);
            continue;
        }
        pending.push_back(Launch{s, 0});
    }

    std::map<pid_t, std::uint32_t> running;
    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < workers) {
            const Launch launch = pending.front();
            pending.pop_front();
            if (launch.delayMs > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(launch.delayMs));
            }
            ShardStatus &status = report.shards[launch.shard];
            ++status.attempts;
            const pid_t pid = spawnWorker(worker_argv(launch.shard));
            running[pid] = launch.shard;
            if (options.progress) {
                std::fprintf(stderr,
                             "svc: shard %u/%u attempt %u -> pid %d\n",
                             launch.shard, shards, status.attempts,
                             static_cast<int>(pid));
            }
        }
        if (running.empty())
            continue;

        int wstatus = 0;
        const pid_t pid = waitpid(-1, &wstatus, 0);
        if (pid < 0)
            fatal("svc: waitpid failed");
        const auto it = running.find(pid);
        if (it == running.end())
            continue;
        const std::uint32_t shard = it->second;
        running.erase(it);

        ShardStatus &status = report.shards[shard];
        Supervision &watch = sup[shard];
        const std::size_t count = journaledPoints(journal_paths[shard]);
        const std::size_t fresh = count > watch.last ? count - watch.last : 0;
        status.journaledPoints = count;
        const bool progressed = fresh > 0;
        watch.last = count;

        const bool clean =
            WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
        if (clean && count == plan.shardPoints(shard)) {
            status.done = true;
            if (options.progress)
                std::fprintf(stderr, "svc: shard %u/%u complete (%zu "
                                     "point(s))\n",
                             shard, shards, count);
            continue;
        }

        // From here the attempt is a death: by signal, by nonzero
        // exit, or -- a worker bug -- a clean exit with an incomplete
        // journal. The journal keeps whatever the attempt achieved.
        const std::string death = clean
                                      ? "exited 0 with an incomplete "
                                        "journal"
                                      : describeDeath(wstatus);
        if (options.maxRetries == 0) {
            status.error = strprintf(
                "%s; relaunching disabled (--max-retries 0), journal "
                "kept for --resume",
                death.c_str());
            if (options.progress)
                std::fprintf(stderr, "svc: shard %u/%u %s\n", shard,
                             shards, status.error.c_str());
            continue;
        }
        // The watchdog judges forward progress, not survival: a death
        // after new points is normal churn (a --kill-after worker dies
        // every attempt and still converges); only consecutive barren
        // attempts consume retries.
        watch.strikes = progressed ? 0 : watch.strikes + 1;
        if (watch.strikes > options.maxRetries) {
            status.error = strprintf(
                "%s after %u consecutive attempt(s) with no new "
                "points; giving up",
                death.c_str(), watch.strikes);
            if (options.progress)
                std::fprintf(stderr, "svc: shard %u/%u %s\n", shard,
                             shards, status.error.c_str());
            continue;
        }
        unsigned delay = options.backoffMs;
        for (unsigned i = 0; i < watch.strikes && delay < maxBackoffMs;
             ++i)
            delay *= 2;
        delay = std::min(delay, maxBackoffMs);
        if (options.progress) {
            std::fprintf(stderr,
                         "svc: shard %u/%u %s after %zu new point(s); "
                         "retrying in %u ms\n",
                         shard, shards, death.c_str(), fresh, delay);
        }
        pending.push_back(Launch{shard, delay});
    }

    report.ok = true;
    for (const ShardStatus &status : report.shards)
        report.ok = report.ok && status.done;
    return report;
}

} // namespace mcsim::svc
