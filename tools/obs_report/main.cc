/**
 * @file
 * obs_report: run one configuration point and report where its cycles
 * went -- the exact stall-cause breakdown (src/obs/ attribution), the
 * latency-histogram summaries, and optionally a Perfetto timeline.
 *
 * Usage:
 *   obs_report [--benchmark NAME] [--model NAME] [--procs N]
 *              [--cache BYTES] [--line BYTES] [--delay N]
 *              [--scale quick|scaled|full] [--seed N]
 *              [--trace FILE] [--trace-capacity N]
 *              [--assert-identity] [--json]
 *
 * Defaults: Relax / WO1 / quick-grid geometry (8 procs, 4K cache,
 * 16-byte lines, delay 4), derived seed. --trace FILE writes a Chrome
 * trace-event JSON loadable in ui.perfetto.dev / chrome://tracing.
 *
 * Exit status: 0 ok, 1 when --assert-identity finds a processor whose
 * busy + stall cycles do not equal its run time (or the machine-level
 * identity fails), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/machine.hh"
#include "core/metrics.hh"
#include "exp/grid.hh"
#include "exp/json.hh"
#include "obs/perfetto.hh"
#include "obs/stall.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

#include "../common/cli.hh"

using namespace mcsim;

namespace
{

struct Options
{
    exp::SweepPoint point;
    std::string tracePath;
    std::size_t traceCapacity = std::size_t(1) << 20;
    bool assertIdentity = false;
    bool json = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--benchmark NAME] [--model NAME] [--procs N]\n"
        "          [--cache BYTES] [--line BYTES] [--delay N]\n"
        "          [--scale quick|scaled|full] [--seed N]\n"
        "          [--trace FILE] [--trace-capacity N]\n"
        "          [--assert-identity] [--json]\n"
        "  --benchmark       Gauss|Qsort|Relax|Psim|Synthetic "
        "(default Relax)\n"
        "  --model           SC1|bSC1|SC2|WO1|bWO1|WO2|RC (default WO1)\n"
        "  --procs/--cache/--line/--delay  machine geometry\n"
        "                    (default 8 / 4096 / 16 / 4)\n"
        "  --scale           problem scale (default quick)\n"
        "  --seed            workload seed (default: derived from the "
        "point)\n"
        "  --trace FILE      write a Perfetto (Chrome trace-event) JSON\n"
        "  --trace-capacity  tracer ring size in events (default 1M)\n"
        "  --assert-identity exit 1 unless busy + stalls == cycles "
        "exactly\n"
        "  --json            machine-readable report instead of tables\n",
        argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.point.benchmark = "Relax";
    opt.point.model = core::Model::WO1;
    opt.point.scale = exp::Scale::Quick;
    opt.point.numProcs = 8;
    opt.point.cacheBytes = 4096;
    opt.point.lineBytes = 16;
    opt.point.delay = 4;
    bool seed_given = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        auto argError = [&](const std::string &message) {
            std::fprintf(stderr, "obs_report: %s\n", message.c_str());
            usage(argv[0]);
            std::exit(2);
        };
        auto nextUnsigned = [&]() -> unsigned {
            unsigned value = 0;
            if (!tools::parseUnsigned(next(), value))
                argError(arg + " expects a non-negative integer, got '" +
                         argv[i] + "'");
            return value;
        };
        if (arg == "--benchmark") {
            opt.point.benchmark = next();
        } else if (arg == "--model") {
            // modelFromName throws on an unknown name; keep the usage
            // contract (one line + exit 2) instead of std::terminate.
            try {
                opt.point.model = core::modelFromName(next());
            } catch (const FatalError &err) {
                argError(err.what());
            }
        } else if (arg == "--procs") {
            opt.point.numProcs = nextUnsigned();
        } else if (arg == "--cache") {
            opt.point.cacheBytes = nextUnsigned();
        } else if (arg == "--line") {
            opt.point.lineBytes = nextUnsigned();
        } else if (arg == "--delay") {
            opt.point.delay = nextUnsigned();
        } else if (arg == "--scale") {
            try {
                opt.point.scale = exp::scaleFromName(next());
            } catch (const FatalError &err) {
                argError(err.what());
            }
        } else if (arg == "--seed") {
            if (!tools::parseU64(next(), opt.point.seed))
                argError("--seed expects an integer");
            seed_given = true;
        } else if (arg == "--trace") {
            opt.tracePath = next();
        } else if (arg == "--trace-capacity") {
            std::uint64_t capacity = 0;
            if (!tools::parseU64(next(), capacity) || capacity == 0)
                argError("--trace-capacity expects a positive integer");
            opt.traceCapacity = static_cast<std::size_t>(capacity);
        } else if (arg == "--assert-identity") {
            opt.assertIdentity = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            std::exit(2);
        }
    }
    if (!seed_given)
        opt.point.seed = opt.point.derivedSeed();
    return opt;
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

void
printHistRow(const char *name, const obs::LatencyHistogram &h)
{
    std::printf("  %-12s %10llu %10.2f %8llu %8llu %8llu %8llu\n", name,
                static_cast<unsigned long long>(h.samples), h.mean(),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p90()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.maxValue));
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::unique_ptr<workloads::Workload> workload;
    std::unique_ptr<core::Machine> machine;
    Tick last = 0;
    try {
        workload = opt.point.makeWorkload();
        core::MachineConfig cfg = opt.point.machineConfig();
        if (!workload->dataRaceFree())
            cfg.check.races = false;
        if (!opt.tracePath.empty()) {
            cfg.obs.tracer = true;
            cfg.obs.tracerEvents = opt.traceCapacity;
        }
        machine = std::make_unique<core::Machine>(cfg);
        workload->setup(*machine);
        last = machine->run();
        workload->verify(*machine);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }

    const core::RunMetrics m =
        core::RunMetrics::fromMachine(*machine, last);

    // The attribution identity, per processor and machine-wide.
    bool identity_ok = true;
    for (unsigned p = 0; p < machine->numProcs(); ++p) {
        const auto &ps = machine->proc(p).stats();
        if (ps.breakdown.accounted() != ps.finishedAt) {
            identity_ok = false;
            std::fprintf(stderr,
                         "identity FAILED: proc %u accounts %llu of %llu "
                         "cycles\n",
                         p,
                         static_cast<unsigned long long>(
                             ps.breakdown.accounted()),
                         static_cast<unsigned long long>(ps.finishedAt));
        }
    }
    const std::uint64_t total =
        static_cast<std::uint64_t>(last) * machine->numProcs();
    if (m.breakdown.accounted() + m.idleCycles != total) {
        identity_ok = false;
        std::fprintf(stderr,
                     "identity FAILED: machine accounts %llu of %llu "
                     "proc-cycles\n",
                     static_cast<unsigned long long>(
                         m.breakdown.accounted() + m.idleCycles),
                     static_cast<unsigned long long>(total));
    }

    if (!opt.tracePath.empty()) {
        const obs::Tracer *tracer = machine->tracer();
        std::ofstream out(opt.tracePath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.tracePath.c_str());
            return 2;
        }
        out << obs::perfettoJson(*tracer);
        std::fprintf(stderr,
                     "trace: %zu event(s) (%llu overwritten) -> %s\n",
                     tracer->size(),
                     static_cast<unsigned long long>(tracer->dropped()),
                     opt.tracePath.c_str());
    }

    if (opt.json) {
        exp::Json doc = exp::Json::object();
        doc["point"] = exp::Json(opt.point.id());
        doc["identity_ok"] = exp::Json(identity_ok);
        exp::Json metrics = exp::Json::object();
        for (const auto &[name, value] : m.toStatSet())
            metrics[name] = exp::Json(value);
        doc["metrics"] = std::move(metrics);
        std::printf("%s\n", doc.dump().c_str());
        return identity_ok || !opt.assertIdentity ? 0 : 1;
    }

    std::printf("%s: %llu cycles, %u procs\n", opt.point.id().c_str(),
                static_cast<unsigned long long>(last),
                machine->numProcs());

    std::printf("\ncycle breakdown (%% of %llu proc-cycles)\n",
                static_cast<unsigned long long>(total));
    auto row = [&](const char *name, std::uint64_t cycles) {
        std::printf("  %-20s %14llu  %6.2f%%\n", name,
                    static_cast<unsigned long long>(cycles),
                    pct(cycles, total));
    };
    row("busy", m.breakdown.busyCycles);
    for (unsigned c = 0; c < obs::numStallCauses; ++c) {
        const auto cause = static_cast<obs::StallCause>(c);
        row(obs::stallCauseName(cause), m.breakdown.cause(cause));
    }
    row("idle (finished)", m.idleCycles);
    std::printf("  %-20s %14llu  %6.2f%%  [%s]\n", "total",
                static_cast<unsigned long long>(m.breakdown.accounted() +
                                                m.idleCycles),
                pct(m.breakdown.accounted() + m.idleCycles, total),
                identity_ok ? "exact" : "MISMATCH");

    std::printf("\nlatency histograms (cycles)\n");
    std::printf("  %-12s %10s %10s %8s %8s %8s %8s\n", "", "samples",
                "mean", "p50", "p90", "p99", "max");
    printHistRow("miss", m.missLatencyHist);
    printHistRow("net transit", m.netTransitHist);
    printHistRow("mem queue", m.memQueueHist);

    return identity_ok || !opt.assertIdentity ? 0 : 1;
}
